//! Pessimistic error-based pruning (C4.5 / J48 style).
//!
//! After growing, each subtree is compared against the leaf that would
//! replace it. Errors are estimated pessimistically: the observed training
//! error at a node is inflated to the upper limit of a confidence interval
//! with confidence factor `cf` (default 0.25). If the estimated error of the
//! collapsed leaf does not exceed the summed estimated error of the subtree
//! (plus a small slack, as in C4.5), the subtree is replaced by the leaf.

use super::{DecisionTree, Node, NodeKind};

/// Upper confidence limit inflation: the number of *additional* errors to
/// add to `e` observed errors among `n` records, for confidence factor
/// `cf`. This is the `addErrs` estimate used by C4.5 and Weka's J48.
pub(crate) fn add_errs(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    if e < 1.0 {
        // Base case: zero observed errors. The upper limit solves
        // (1-p)^n = cf  =>  p = 1 - cf^(1/n); expected extra errors = n*p.
        let base = n * (1.0 - cf.powf(1.0 / n));
        if e > 0.0 {
            // Interpolate between the e=0 case and the e=1 case.
            return base + e * (add_errs(n, 1.0, cf) - base);
        }
        return base;
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = normal_quantile(1.0 - cf);
    let f = (e + 0.5) / n;
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    (r * n - e).max(0.0)
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 on (0,1)).
pub(crate) fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

fn leaf_errors(node: &Node) -> f64 {
    let n = node.n() as f64;
    let correct = node.counts[node.majority as usize] as f64;
    n - correct
}

/// Estimated (pessimistic) error count if `node` were a leaf.
fn estimated_leaf_error(node: &Node, cf: f64) -> f64 {
    let n = node.n() as f64;
    let e = leaf_errors(node);
    e + add_errs(n, e, cf)
}

/// Prune `tree` in place, then compact the arena so dropped nodes do not
/// linger in memory (thousands of trees are kept alive by the high-order
/// model, so arena size matters).
pub(crate) fn prune(tree: &mut DecisionTree, cf: f64) {
    prune_rec(tree, 0, cf);
    compact(tree);
}

/// Returns the estimated subtree error after pruning the subtree at `id`.
fn prune_rec(tree: &mut DecisionTree, id: u32, cf: f64) -> f64 {
    let kind = tree.nodes[id as usize].kind.clone();
    let subtree_err = match kind {
        NodeKind::Leaf => return estimated_leaf_error(&tree.nodes[id as usize], cf),
        NodeKind::Cat { ref children, .. } => children
            .iter()
            .map(|&c| prune_rec(tree, c, cf))
            .sum::<f64>(),
        NodeKind::Num { left, right, .. } => prune_rec(tree, left, cf) + prune_rec(tree, right, cf),
    };
    let as_leaf = estimated_leaf_error(&tree.nodes[id as usize], cf);
    // C4.5 collapses when the leaf estimate is within 0.1 errors of the
    // subtree estimate.
    if as_leaf <= subtree_err + 0.1 {
        tree.nodes[id as usize].kind = NodeKind::Leaf;
        as_leaf
    } else {
        subtree_err
    }
}

/// Rebuild the arena keeping only nodes reachable from the root.
fn compact(tree: &mut DecisionTree) {
    let mut new_nodes: Vec<Node> = Vec::with_capacity(tree.nodes.len());
    let old = std::mem::take(&mut tree.nodes);
    fn copy(old: &[Node], new_nodes: &mut Vec<Node>, id: u32) -> u32 {
        let new_id = new_nodes.len() as u32;
        new_nodes.push(old[id as usize].clone());
        let kind = match &old[id as usize].kind {
            NodeKind::Leaf => NodeKind::Leaf,
            NodeKind::Cat { attr, children } => {
                let new_children: Vec<u32> =
                    children.iter().map(|&c| copy(old, new_nodes, c)).collect();
                NodeKind::Cat {
                    attr: *attr,
                    children: new_children.into_boxed_slice(),
                }
            }
            NodeKind::Num {
                attr,
                threshold,
                left,
                right,
            } => {
                let l = copy(old, new_nodes, *left);
                let r = copy(old, new_nodes, *right);
                NodeKind::Num {
                    attr: *attr,
                    threshold: *threshold,
                    left: l,
                    right: r,
                }
            }
        };
        new_nodes[new_id as usize].kind = kind;
        new_id
    }
    copy(&old, &mut new_nodes, 0);
    tree.nodes = new_nodes;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.75) - 0.6744897501960817).abs() < 1e-7);
        assert!((normal_quantile(0.975) - 1.959963984540054).abs() < 1e-7);
        assert!((normal_quantile(0.025) + 1.959963984540054).abs() < 1e-7);
        // tail region uses the other branch of the approximation
        assert!((normal_quantile(0.001) + 3.090232306167813).abs() < 1e-6);
    }

    #[test]
    fn add_errs_zero_observed() {
        // With no observed errors the pessimistic estimate is still > 0.
        let extra = add_errs(10.0, 0.0, 0.25);
        assert!(extra > 0.0 && extra < 10.0);
        // More data shrinks the relative inflation.
        assert!(add_errs(1000.0, 0.0, 0.25) / 1000.0 < extra / 10.0);
    }

    #[test]
    fn add_errs_monotone_in_cf() {
        // Smaller cf => more pessimism => more added errors.
        let strict = add_errs(100.0, 10.0, 0.05);
        let lax = add_errs(100.0, 10.0, 0.5);
        assert!(strict > lax);
    }

    #[test]
    fn add_errs_saturates_near_n() {
        assert_eq!(add_errs(10.0, 10.0, 0.25), 0.0);
        assert!(add_errs(10.0, 9.8, 0.25) <= 0.2 + 1e-12);
    }

    #[test]
    fn add_errs_fractional_interpolates() {
        let e0 = add_errs(50.0, 0.0, 0.25);
        let e_half = add_errs(50.0, 0.5, 0.25);
        let e1 = add_errs(50.0, 1.0, 0.25);
        assert!(e0 <= e_half + 1e-12 && e_half <= e1 + 1e-9 || (e0 >= e_half && e_half >= e1));
        // midpoint property of the linear interpolation
        assert!((e_half - (e0 + e1) * 0.5).abs() < 1e-9);
    }
}
