//! A C4.5-style decision tree.
//!
//! This is the workspace's stand-in for Quinlan's C4.5 release 8, which the
//! paper uses as the common base classifier for all three algorithms. The
//! implemented subset is the part that matters for the reproduction:
//!
//! * gain-ratio split selection with C4.5's average-gain prefilter,
//! * multiway splits on categorical attributes,
//! * binary threshold splits on numeric attributes,
//! * minimum-leaf-size constraints,
//! * pessimistic error-based pruning with the confidence-bound estimate
//!   (the same `addErrs` formulation popularised by Weka's J48),
//! * Laplace-smoothed leaf class distributions (needed by Eq. 10's
//!   `M_c(l|x)` and by WCE's probability-based weights).
//!
//! Not implemented (not exercised by the paper's experiments): missing
//! values, subtree raising, windowing, and rule extraction.

mod grow;
mod prune;
mod split;

use hom_data::{ClassId, Instances};

use crate::api::{Classifier, Learner};

/// Hyper-parameters of the tree learner.
#[derive(Debug, Clone)]
pub struct DecisionTreeParams {
    /// Minimum number of training records in each child of a split
    /// (C4.5's `-m`, default 2).
    pub min_leaf: usize,
    /// Hard depth cap as a safety net against pathological recursion.
    pub max_depth: usize,
    /// Whether to run pessimistic pruning after growing.
    pub prune: bool,
    /// Pruning confidence factor (C4.5's `-c`, default 0.25). Smaller
    /// values prune more aggressively.
    pub cf: f64,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            min_leaf: 2,
            max_depth: 60,
            prune: true,
            cf: 0.25,
        }
    }
}

/// Internal node payload.
#[derive(Debug, Clone)]
pub(crate) enum NodeKind {
    Leaf,
    /// Multiway split on a categorical attribute; one child per category.
    Cat {
        attr: u32,
        children: Box<[u32]>,
    },
    /// Binary split on a numeric attribute: `x[attr] <= threshold` goes
    /// left.
    Num {
        attr: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) kind: NodeKind,
    /// Training class counts that reached this node.
    pub(crate) counts: Box<[u32]>,
    pub(crate) majority: ClassId,
}

impl Node {
    pub(crate) fn n(&self) -> u32 {
        self.counts.iter().sum()
    }
}

/// A trained decision tree. Nodes are stored in one flat arena; node ids are
/// indices into it, with the root at index 0.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) n_classes: usize,
}

impl DecisionTree {
    /// Number of nodes (after pruning).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (after pruning).
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf))
            .count()
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(t: &DecisionTree, id: u32) -> usize {
            match &t.nodes[id as usize].kind {
                NodeKind::Leaf => 0,
                NodeKind::Cat { children, .. } => {
                    1 + children.iter().map(|&c| rec(t, c)).max().unwrap_or(0)
                }
                NodeKind::Num { left, right, .. } => 1 + rec(t, *left).max(rec(t, *right)),
            }
        }
        rec(self, 0)
    }

    /// Walk from the root to the leaf (or dead-end node) matching `x`.
    fn descend(&self, x: &[f64]) -> &Node {
        let mut id = 0u32;
        loop {
            let node = &self.nodes[id as usize];
            match &node.kind {
                NodeKind::Leaf => return node,
                NodeKind::Cat { attr, children } => {
                    let v = x[*attr as usize];
                    let vi = v as usize;
                    // A category code the training data never produced a
                    // branch for falls back to this node's distribution.
                    if v.fract() != 0.0 || v < 0.0 || vi >= children.len() {
                        return node;
                    }
                    id = children[vi];
                }
                NodeKind::Num {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    id = if x[*attr as usize] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, x: &[f64]) -> ClassId {
        self.descend(x).majority
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        let node = self.descend(x);
        let n = node.n() as f64;
        let k = self.n_classes as f64;
        for (o, &c) in out.iter_mut().zip(node.counts.iter()) {
            *o = (c as f64 + 1.0) / (n + k);
        }
    }

    fn complexity(&self) -> usize {
        self.nodes.len()
    }

    fn flatten(&self) -> Option<crate::flat::FlatTree> {
        Some(crate::flat::FlatTree::from_decision_tree(self))
    }
}

/// Learner producing [`DecisionTree`]s.
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeLearner {
    /// Hyper-parameters used for every fit.
    pub params: DecisionTreeParams,
}

impl DecisionTreeLearner {
    /// A learner with default C4.5-like parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A learner with pruning disabled (used by ablation benches).
    pub fn unpruned() -> Self {
        DecisionTreeLearner {
            params: DecisionTreeParams {
                prune: false,
                ..Default::default()
            },
        }
    }

    /// Train on `data`, returning the concrete tree type.
    pub fn fit_tree(&self, data: &dyn Instances) -> DecisionTree {
        let mut tree = grow::grow(data, &self.params);
        if self.params.prune {
            prune::prune(&mut tree, self.params.cf);
        }
        tree
    }
}

impl Learner for DecisionTreeLearner {
    fn fit(&self, data: &dyn Instances) -> Box<dyn Classifier> {
        Box::new(self.fit_tree(data))
    }

    fn name(&self) -> &str {
        "c4.5-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_data::{Attribute, Dataset, Schema};
    use std::sync::Arc;

    fn cat_schema() -> Arc<Schema> {
        Schema::new(
            vec![
                Attribute::categorical("a", ["0", "1"]),
                Attribute::categorical("b", ["0", "1"]),
            ],
            ["neg", "pos"],
        )
    }

    /// AND of two binary categorical attributes needs a two-level tree:
    /// the first split leaves one mixed branch that the second attribute
    /// resolves. (XOR is intentionally not tested — greedy gain-based
    /// trees, including real C4.5, cannot split on zero-gain attributes.)
    #[test]
    fn learns_categorical_and() {
        let mut d = Dataset::new(cat_schema());
        for _rep in 0..4 {
            d.push(&[0.0, 0.0], 0);
            d.push(&[0.0, 1.0], 0);
            d.push(&[1.0, 0.0], 0);
            d.push(&[1.0, 1.0], 1);
        }
        let t = DecisionTreeLearner::unpruned().fit_tree(&d);
        assert_eq!(t.predict(&[0.0, 0.0]), 0);
        assert_eq!(t.predict(&[0.0, 1.0]), 0);
        assert_eq!(t.predict(&[1.0, 0.0]), 0);
        assert_eq!(t.predict(&[1.0, 1.0]), 1);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn learns_numeric_threshold() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["lo", "hi"]);
        let mut d = Dataset::new(schema);
        for i in 0..50 {
            let v = i as f64 / 50.0;
            d.push(&[v], u32::from(v > 0.6));
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        assert_eq!(t.predict(&[0.1]), 0);
        assert_eq!(t.predict(&[0.59]), 0);
        assert_eq!(t.predict(&[0.95]), 1);
    }

    #[test]
    fn pure_data_gives_single_leaf() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            d.push(&[i as f64], 1);
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[3.0]), 1);
    }

    #[test]
    fn single_record_is_a_leaf() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        d.push(&[1.0], 0);
        let t = DecisionTreeLearner::new().fit_tree(&d);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[1.0]), 0);
    }

    #[test]
    fn proba_sums_to_one_and_is_positive() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b", "c"]);
        let mut d = Dataset::new(schema);
        for i in 0..30 {
            d.push(&[i as f64], (i % 3) as u32);
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        let mut p = [0.0; 3];
        t.predict_proba(&[12.0], &mut p);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn unseen_category_falls_back_to_node_distribution() {
        let mut d = Dataset::new(Schema::new(
            vec![Attribute::categorical("a", ["x", "y", "z"])],
            ["neg", "pos"],
        ));
        // Only values x and y appear; z is never seen.
        for _ in 0..10 {
            d.push(&[0.0], 0);
            d.push(&[1.0], 1);
        }
        let t = DecisionTreeLearner::unpruned().fit_tree(&d);
        // prediction on z must not panic and returns the overall majority
        let _ = t.predict(&[2.0]);
        let mut p = [0.0; 2];
        t.predict_proba(&[2.0], &mut p);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_shrinks_noisy_tree() {
        // Labels are pure noise; an unpruned tree overfits while the pruned
        // one should collapse (or at least not be larger).
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        let mut state = 12345u64;
        for i in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            d.push(&[i as f64], ((state >> 33) & 1) as u32);
        }
        let unpruned = DecisionTreeLearner::unpruned().fit_tree(&d);
        let pruned = DecisionTreeLearner::new().fit_tree(&d);
        assert!(
            (pruned.n_leaves() as f64) < 0.8 * unpruned.n_leaves() as f64,
            "pruning should remove a substantial part of a pure-noise tree: {} vs {}",
            pruned.n_leaves(),
            unpruned.n_leaves()
        );
    }

    #[test]
    fn respects_max_depth() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for i in 0..100 {
            d.push(&[i as f64], (i % 2) as u32);
        }
        let learner = DecisionTreeLearner {
            params: DecisionTreeParams {
                max_depth: 3,
                prune: false,
                ..Default::default()
            },
        };
        assert!(learner.fit_tree(&d).depth() <= 3);
    }

    #[test]
    fn mixed_attribute_types() {
        let schema = Schema::new(
            vec![
                Attribute::categorical("c", ["p", "q"]),
                Attribute::numeric("x"),
            ],
            ["neg", "pos"],
        );
        let mut d = Dataset::new(schema);
        // class = (c == q) AND (x > 0.5)
        for i in 0..40 {
            let x = (i % 10) as f64 / 10.0;
            let c = f64::from(i % 2 == 0);
            let y = u32::from(c == 1.0 && x > 0.5);
            d.push(&[c, x], y);
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        assert_eq!(t.predict(&[1.0, 0.9]), 1);
        assert_eq!(t.predict(&[1.0, 0.1]), 0);
        assert_eq!(t.predict(&[0.0, 0.9]), 0);
    }

    #[test]
    fn complexity_reports_node_count() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for i in 0..50 {
            d.push(&[i as f64], u32::from(i >= 25));
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        assert_eq!(t.complexity(), t.n_nodes());
        assert!(t.n_nodes() >= 3);
    }
}
