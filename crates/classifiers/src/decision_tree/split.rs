//! Split selection: information gain, split info, gain ratio.

use hom_data::Instances;

use super::DecisionTreeParams;

/// A chosen split, together with the index partition it induces.
pub(crate) enum Split {
    Cat {
        attr: usize,
        /// One index bucket per category value (possibly empty buckets).
        buckets: Vec<Vec<u32>>,
    },
    Num {
        attr: usize,
        threshold: f64,
        left: Vec<u32>,
        right: Vec<u32>,
    },
}

/// Entropy (nats scaled to bits are irrelevant for comparisons; we use
/// natural log) of a class-count vector with total `n`.
pub(crate) fn entropy(counts: &[u32], n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.ln();
        }
    }
    h
}

struct Candidate {
    attr: usize,
    gain: f64,
    gain_ratio: f64,
    /// For numeric attributes: the threshold. Unused for categorical.
    threshold: f64,
    is_numeric: bool,
}

/// Find the best split of the records at `idx`, or `None` when no
/// admissible split has positive gain.
///
/// Follows C4.5's selection rule: among candidates whose information gain
/// is at least the average gain of all positive-gain candidates, pick the
/// one with the highest gain ratio.
pub(crate) fn best_split(
    data: &dyn Instances,
    idx: &[u32],
    parent_counts: &[u32],
    params: &DecisionTreeParams,
) -> Option<Split> {
    let n = idx.len() as f64;
    let parent_h = entropy(parent_counts, n);
    let n_classes = data.schema().n_classes();
    let mut candidates: Vec<Candidate> = Vec::new();

    for attr in 0..data.schema().n_attrs() {
        if let Some(card) = data.schema().cardinality(attr) {
            if let Some(c) = eval_categorical(data, idx, attr, card, n_classes, parent_h, params) {
                candidates.push(c);
            }
        } else if let Some(c) = eval_numeric(data, idx, attr, n_classes, parent_h, params) {
            candidates.push(c);
        }
    }

    if candidates.is_empty() {
        return None;
    }
    let avg_gain: f64 = candidates.iter().map(|c| c.gain).sum::<f64>() / candidates.len() as f64;
    let best = candidates
        .iter()
        .filter(|c| c.gain + 1e-12 >= avg_gain)
        .max_by(|a, b| a.gain_ratio.total_cmp(&b.gain_ratio))?;

    // Materialize the partition for the winning candidate.
    Some(if best.is_numeric {
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &i in idx {
            if data.row(i as usize)[best.attr] <= best.threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        Split::Num {
            attr: best.attr,
            threshold: best.threshold,
            left,
            right,
        }
    } else {
        let card = data.schema().cardinality(best.attr).unwrap();
        let mut buckets = vec![Vec::new(); card];
        for &i in idx {
            let v = data.row(i as usize)[best.attr] as usize;
            buckets[v].push(i);
        }
        Split::Cat {
            attr: best.attr,
            buckets,
        }
    })
}

fn eval_categorical(
    data: &dyn Instances,
    idx: &[u32],
    attr: usize,
    card: usize,
    n_classes: usize,
    parent_h: f64,
    params: &DecisionTreeParams,
) -> Option<Candidate> {
    let n = idx.len() as f64;
    // counts[v * n_classes + c]
    let mut counts = vec![0u32; card * n_classes];
    let mut totals = vec![0u32; card];
    for &i in idx {
        let row = data.row(i as usize);
        let v = row[attr] as usize;
        counts[v * n_classes + data.label(i as usize) as usize] += 1;
        totals[v] += 1;
    }
    // C4.5 requires at least two branches holding >= min_leaf records.
    let non_trivial = totals
        .iter()
        .filter(|&&t| t as usize >= params.min_leaf)
        .count();
    let non_empty = totals.iter().filter(|&&t| t > 0).count();
    if non_trivial < 2 || non_empty < 2 {
        return None;
    }

    let mut child_h = 0.0;
    let mut split_info = 0.0;
    for v in 0..card {
        let t = totals[v] as f64;
        if totals[v] > 0 {
            child_h += t / n * entropy(&counts[v * n_classes..(v + 1) * n_classes], t);
            let p = t / n;
            split_info -= p * p.ln();
        }
    }
    let gain = parent_h - child_h;
    if gain <= 1e-12 || split_info <= 1e-12 {
        return None;
    }
    Some(Candidate {
        attr,
        gain,
        gain_ratio: gain / split_info,
        threshold: 0.0,
        is_numeric: false,
    })
}

fn eval_numeric(
    data: &dyn Instances,
    idx: &[u32],
    attr: usize,
    n_classes: usize,
    parent_h: f64,
    params: &DecisionTreeParams,
) -> Option<Candidate> {
    let n = idx.len();
    if n < 2 * params.min_leaf {
        return None;
    }
    // Sort (value, label) pairs by value.
    let mut pairs: Vec<(f64, u32)> = idx
        .iter()
        .map(|&i| (data.row(i as usize)[attr], data.label(i as usize)))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut right_counts = vec![0u32; n_classes];
    for &(_, l) in &pairs {
        right_counts[l as usize] += 1;
    }
    let mut left_counts = vec![0u32; n_classes];

    let nf = n as f64;
    let mut best: Option<(f64, f64)> = None; // (gain, threshold)
    for k in 0..n - 1 {
        let (v, l) = pairs[k];
        left_counts[l as usize] += 1;
        right_counts[l as usize] -= 1;
        let next_v = pairs[k + 1].0;
        // Only cut between distinct values.
        if next_v <= v {
            continue;
        }
        let n_left = k + 1;
        let n_right = n - n_left;
        if n_left < params.min_leaf || n_right < params.min_leaf {
            continue;
        }
        let h = (n_left as f64 / nf) * entropy(&left_counts, n_left as f64)
            + (n_right as f64 / nf) * entropy(&right_counts, n_right as f64);
        let gain = parent_h - h;
        if best.is_none_or(|(g, _)| gain > g) {
            best = Some((gain, (v + next_v) * 0.5));
        }
    }
    let (gain, threshold) = best?;
    if gain <= 1e-12 {
        return None;
    }
    // Split info of the realized binary partition.
    let n_left = pairs.iter().filter(|&&(v, _)| v <= threshold).count();
    let p = n_left as f64 / nf;
    let split_info = -(p * p.ln() + (1.0 - p) * (1.0 - p).ln());
    if split_info <= 1e-12 {
        return None;
    }
    Some(Candidate {
        attr,
        gain,
        gain_ratio: gain / split_info,
        threshold,
        is_numeric: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_data::{Attribute, Dataset, Schema};

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(&[10, 0], 10.0), 0.0);
        let h = entropy(&[5, 5], 10.0);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(entropy(&[], 0.0), 0.0);
    }

    #[test]
    fn picks_informative_categorical_attribute() {
        let schema = Schema::new(
            vec![
                Attribute::categorical("noise", ["0", "1"]),
                Attribute::categorical("signal", ["0", "1"]),
            ],
            ["neg", "pos"],
        );
        let mut d = Dataset::new(schema);
        // signal fully determines the label; noise is uncorrelated
        for i in 0..40u32 {
            let noise = f64::from(i % 2);
            let signal = f64::from((i / 2) % 2);
            d.push(&[noise, signal], (signal as u32) & 1);
        }
        let idx: Vec<u32> = (0..40).collect();
        let counts = [20, 20];
        let split = best_split(&d, &idx, &counts, &DecisionTreeParams::default()).unwrap();
        match split {
            Split::Cat { attr, buckets } => {
                assert_eq!(attr, 1);
                assert_eq!(buckets.len(), 2);
                assert_eq!(buckets[0].len(), 20);
            }
            _ => panic!("expected categorical split"),
        }
    }

    #[test]
    fn numeric_threshold_lies_between_classes() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for i in 0..20 {
            d.push(&[i as f64], u32::from(i >= 12));
        }
        let idx: Vec<u32> = (0..20).collect();
        let counts = [12, 8];
        let split = best_split(&d, &idx, &counts, &DecisionTreeParams::default()).unwrap();
        match split {
            Split::Num {
                threshold,
                left,
                right,
                ..
            } => {
                assert!(threshold > 11.0 && threshold < 12.0);
                assert_eq!(left.len(), 12);
                assert_eq!(right.len(), 8);
            }
            _ => panic!("expected numeric split"),
        }
    }

    #[test]
    fn no_split_on_pure_or_constant_data() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for _ in 0..10 {
            d.push(&[1.0], 0);
            d.push(&[1.0], 1);
        }
        let idx: Vec<u32> = (0..20).collect();
        // constant attribute -> no admissible threshold
        assert!(best_split(&d, &idx, &[10, 10], &DecisionTreeParams::default()).is_none());
    }

    #[test]
    fn min_leaf_blocks_tiny_splits() {
        // Three records cannot be split with min_leaf = 2 (no threshold
        // leaves two records on each side).
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        d.push(&[0.0], 0);
        d.push(&[1.0], 0);
        d.push(&[2.0], 1);
        let idx: Vec<u32> = (0..3).collect();
        let params = DecisionTreeParams {
            min_leaf: 2,
            ..Default::default()
        };
        assert!(best_split(&d, &idx, &[2, 1], &params).is_none());
    }
}
