//! Recursive tree growing.

use hom_data::{ClassId, Instances};

use super::split::{best_split, Split};
use super::{DecisionTree, DecisionTreeParams, Node, NodeKind};

/// Grow an unpruned tree over all records of `data`.
pub(crate) fn grow(data: &dyn Instances, params: &DecisionTreeParams) -> DecisionTree {
    let n_classes = data.schema().n_classes();
    let mut tree = DecisionTree {
        nodes: Vec::new(),
        n_classes,
    };
    let idx: Vec<u32> = (0..data.len() as u32).collect();
    grow_node(&mut tree, data, idx, 0, params);
    tree
}

fn class_counts(data: &dyn Instances, idx: &[u32], n_classes: usize) -> Box<[u32]> {
    let mut counts = vec![0u32; n_classes].into_boxed_slice();
    for &i in idx {
        counts[data.label(i as usize) as usize] += 1;
    }
    counts
}

fn majority(counts: &[u32]) -> ClassId {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i as ClassId)
        .unwrap_or(0)
}

/// Grow the node for `idx` and append it (and its subtree) to the arena,
/// returning its id.
fn grow_node(
    tree: &mut DecisionTree,
    data: &dyn Instances,
    idx: Vec<u32>,
    depth: usize,
    params: &DecisionTreeParams,
) -> u32 {
    let counts = class_counts(data, &idx, tree.n_classes);
    let maj = majority(&counts);
    let id = tree.nodes.len() as u32;
    tree.nodes.push(Node {
        kind: NodeKind::Leaf,
        counts,
        majority: maj,
    });

    let n = idx.len();
    let pure = tree.nodes[id as usize]
        .counts
        .iter()
        .filter(|&&c| c > 0)
        .count()
        <= 1;
    if pure || n < 2 * params.min_leaf || depth >= params.max_depth {
        return id;
    }

    let Some(split) = best_split(data, &idx, &tree.nodes[id as usize].counts, params) else {
        return id;
    };
    drop(idx); // partitions own the indices from here on

    match split {
        Split::Cat { attr, buckets } => {
            let mut children = Vec::with_capacity(buckets.len());
            for bucket in buckets {
                if bucket.is_empty() {
                    // Empty branch: a leaf carrying the parent distribution,
                    // so unseen-at-this-node categories predict sensibly.
                    let parent = &tree.nodes[id as usize];
                    let node = Node {
                        kind: NodeKind::Leaf,
                        counts: parent.counts.clone(),
                        majority: parent.majority,
                    };
                    let cid = tree.nodes.len() as u32;
                    tree.nodes.push(node);
                    children.push(cid);
                } else {
                    children.push(grow_node(tree, data, bucket, depth + 1, params));
                }
            }
            tree.nodes[id as usize].kind = NodeKind::Cat {
                attr: attr as u32,
                children: children.into_boxed_slice(),
            };
        }
        Split::Num {
            attr,
            threshold,
            left,
            right,
        } => {
            let l = grow_node(tree, data, left, depth + 1, params);
            let r = grow_node(tree, data, right, depth + 1, params);
            tree.nodes[id as usize].kind = NodeKind::Num {
                attr: attr as u32,
                threshold,
                left: l,
                right: r,
            };
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_data::{Attribute, Dataset, Schema};

    #[test]
    fn root_is_index_zero() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            d.push(&[i as f64], u32::from(i >= 5));
        }
        let t = grow(&d, &DecisionTreeParams::default());
        assert!(matches!(t.nodes[0].kind, NodeKind::Num { .. }));
        assert_eq!(t.nodes[0].n(), 10);
    }

    #[test]
    fn empty_categorical_branch_gets_parent_distribution() {
        let schema = Schema::new(
            vec![Attribute::categorical("c", ["u", "v", "w"])],
            ["a", "b"],
        );
        let mut d = Dataset::new(schema);
        for _ in 0..5 {
            d.push(&[0.0], 0);
            d.push(&[1.0], 1);
        }
        let t = grow(&d, &DecisionTreeParams::default());
        if let NodeKind::Cat { children, .. } = &t.nodes[0].kind {
            let w_child = &t.nodes[children[2] as usize];
            assert_eq!(&*w_child.counts, &[5, 5]);
        } else {
            panic!("expected categorical root split");
        }
    }
}
