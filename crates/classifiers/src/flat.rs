//! Structure-of-arrays flattened trees for the batch-vectorized filter
//! hot path.
//!
//! A [`FlatTree`] is a read-only, cache-friendly re-layout of an already
//! trained tree classifier: all per-node fields live in parallel arrays
//! (structure of arrays, not an array of node structs), siblings occupy
//! **contiguous** ids, and every node carries a precomputed
//! Laplace-smoothed class-probability row in one shared arena. The
//! layout buys three things on the serving hot path:
//!
//! * **Branchless numeric descent** — a numeric split's children are
//!   adjacent (`left = first_child`, `right = first_child + 1`), so one
//!   step is `id = first_child + (x > threshold)`: a comparison turned
//!   into an index, no data-dependent branch for the predictor to miss.
//! * **No pointer chasing** — the arrays are flat `Vec`s indexed by node
//!   id; a whole small tree fits in a few cache lines.
//! * **Zero-cost probability rows** — `M_c(l|x)` (the per-concept class
//!   distribution of paper Eq. 10) is a slice borrow from the proba
//!   arena instead of a per-call Laplace computation.
//!
//! Flattening is **exact**: for every input `x`, [`FlatTree::predict`]
//! and [`FlatTree::predict_proba`] return bit-identical results to the
//! source classifier, including its fallback behavior on category codes
//! the training data never produced a branch for. The precomputed rows
//! are built with the same `(count + 1) / (n + k)` expression the source
//! evaluates per call, so the f64 bits match exactly.
//!
//! Classifiers opt in through [`Classifier::flatten`]
//! (`hom-core`'s `CompiledModel` falls back to dynamic dispatch for
//! classifiers that return `None`, e.g. naive Bayes).

use hom_data::ClassId;

use crate::api::Classifier;
use crate::decision_tree::{DecisionTree, NodeKind};
use crate::wire::{put_f64, put_u32, take_f64, take_u32, take_u8, ClassifierWireError};

/// Discriminant of one flattened node. `u8`-sized so the kind array
/// stays dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum FlatKind {
    /// Terminal node: descent stops here.
    Leaf,
    /// Binary numeric split: `x[attr] <= threshold` goes to
    /// `first_child`, otherwise to `first_child + 1`.
    Num,
    /// Multiway categorical split: category `v` goes to
    /// `first_child + v`; codes outside `0..n_children` (or fractional
    /// or negative values) stop at this node, exactly like the source
    /// tree's dead-end fallback.
    Cat,
}

/// A trained tree re-laid out as structure-of-arrays for batch
/// evaluation (see the [module docs](self) for the layout rationale).
///
/// Node ids index the parallel arrays; the root is id 0 and the
/// children of any node are contiguous. Build one with
/// [`Classifier::flatten`] on a supported classifier, or
/// [`FlatTree::leaf`] for a constant model.
#[derive(Debug, Clone)]
pub struct FlatTree {
    n_classes: usize,
    /// Node discriminants.
    kind: Vec<FlatKind>,
    /// Split attribute per node (unused for leaves).
    attr: Vec<u32>,
    /// Numeric split threshold per node (unused otherwise).
    threshold: Vec<f64>,
    /// First child id per node; numeric right child is `first_child + 1`,
    /// categorical child for code `v` is `first_child + v`.
    first_child: Vec<u32>,
    /// Categorical arity per node (unused otherwise).
    n_children: Vec<u32>,
    /// Majority class per node (the [`FlatTree::predict`] answer).
    majority: Vec<ClassId>,
    /// Laplace-smoothed class rows, `n_classes` per node, one arena:
    /// node `i`'s row is `proba[i * n_classes .. (i + 1) * n_classes]`.
    proba: Vec<f64>,
}

impl FlatTree {
    /// A single-leaf tree: the flattened form of a constant classifier.
    /// `proba.len()` fixes the class count.
    pub fn leaf(majority: ClassId, proba: Vec<f64>) -> Self {
        FlatTree {
            n_classes: proba.len(),
            kind: vec![FlatKind::Leaf],
            attr: vec![0],
            threshold: vec![0.0],
            first_child: vec![0],
            n_children: vec![0],
            majority: vec![majority],
            proba,
        }
    }

    /// Number of reachable nodes in the flattened tree.
    pub fn n_nodes(&self) -> usize {
        self.kind.len()
    }

    /// Walk from the root to the node that decides `x` — a leaf, or the
    /// interior node whose categorical branch `x` falls off of. The
    /// returned id keys [`FlatTree::node_class`] and
    /// [`FlatTree::proba_row`], which is how the batch kernel reads one
    /// descent twice (prediction class for ψ, probability row for
    /// Eq. 10) without re-walking the tree.
    #[inline]
    pub fn descend(&self, x: &[f64]) -> u32 {
        let mut id = 0usize;
        loop {
            match self.kind[id] {
                FlatKind::Leaf => return id as u32,
                FlatKind::Num => {
                    let v = x[self.attr[id] as usize];
                    // `!(v <= t)` (not `v > t`) so NaN routes exactly like
                    // the source tree's `if v <= t { left } else { right }`.
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    let right = u32::from(!(v <= self.threshold[id]));
                    id = (self.first_child[id] + right) as usize;
                }
                FlatKind::Cat => {
                    let v = x[self.attr[id] as usize];
                    let vi = v as usize;
                    if v.fract() != 0.0 || v < 0.0 || vi >= self.n_children[id] as usize {
                        return id as u32;
                    }
                    id = self.first_child[id] as usize + vi;
                }
            }
        }
    }

    /// The class the node at `id` predicts (its training majority).
    #[inline]
    pub fn node_class(&self, id: u32) -> ClassId {
        self.majority[id as usize]
    }

    /// The precomputed Laplace-smoothed class row of the node at `id` —
    /// bit-identical to what the source classifier's `predict_proba`
    /// computes for any `x` that descends to this node.
    #[inline]
    pub fn proba_row(&self, id: u32) -> &[f64] {
        let at = id as usize * self.n_classes;
        &self.proba[at..at + self.n_classes]
    }

    /// Append this tree's wire payload to `out` (the tag byte is the
    /// caller's job — see [`crate::wire`]): class count, node count,
    /// then the parallel arrays in declaration order. All integers are
    /// little-endian; f64s are raw bits, so the decoded tree's
    /// probability rows are bit-identical to this one's.
    pub fn wire_encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.n_classes as u32);
        put_u32(out, self.n_nodes() as u32);
        for &k in &self.kind {
            out.push(k as u8);
        }
        for &a in &self.attr {
            put_u32(out, a);
        }
        for &t in &self.threshold {
            put_f64(out, t);
        }
        for &c in &self.first_child {
            put_u32(out, c);
        }
        for &n in &self.n_children {
            put_u32(out, n);
        }
        for &m in &self.majority {
            put_u32(out, m);
        }
        for &p in &self.proba {
            put_f64(out, p);
        }
    }

    /// Decode a wire payload written by [`Self::wire_encode_into`],
    /// advancing `*at`. Validates the structure exhaustively — class
    /// count against `n_classes`, split attributes against `n_attrs`,
    /// and **forward-only child edges** (`first_child > id`, children in
    /// range) so [`Self::descend`] provably terminates on any input —
    /// and returns a typed error on anything malformed: corrupt bytes
    /// must never panic (or hang) a serving node.
    pub fn wire_decode(
        bytes: &[u8],
        at: &mut usize,
        n_attrs: usize,
        n_classes: usize,
    ) -> Result<Self, ClassifierWireError> {
        let k = take_u32(bytes, at)? as usize;
        if k != n_classes {
            return Err(ClassifierWireError::Corrupt("class count mismatch"));
        }
        let n_nodes = take_u32(bytes, at)? as usize;
        if n_nodes == 0 {
            return Err(ClassifierWireError::Corrupt("empty tree"));
        }
        let mut kind = Vec::new();
        for _ in 0..n_nodes {
            kind.push(match take_u8(bytes, at)? {
                0 => FlatKind::Leaf,
                1 => FlatKind::Num,
                2 => FlatKind::Cat,
                _ => return Err(ClassifierWireError::Corrupt("unknown node kind")),
            });
        }
        let mut attr = Vec::new();
        for _ in 0..n_nodes {
            attr.push(take_u32(bytes, at)?);
        }
        let mut threshold = Vec::new();
        for _ in 0..n_nodes {
            threshold.push(take_f64(bytes, at)?);
        }
        let mut first_child = Vec::new();
        for _ in 0..n_nodes {
            first_child.push(take_u32(bytes, at)?);
        }
        let mut n_children = Vec::new();
        for _ in 0..n_nodes {
            n_children.push(take_u32(bytes, at)?);
        }
        let mut majority = Vec::new();
        for _ in 0..n_nodes {
            majority.push(take_u32(bytes, at)?);
        }
        let mut proba = Vec::new();
        for _ in 0..n_nodes * n_classes {
            proba.push(take_f64(bytes, at)?);
        }
        for id in 0..n_nodes {
            let fc = first_child[id] as usize;
            match kind[id] {
                FlatKind::Leaf => {}
                FlatKind::Num => {
                    if attr[id] as usize >= n_attrs {
                        return Err(ClassifierWireError::Corrupt("split attribute out of range"));
                    }
                    if fc <= id || fc + 2 > n_nodes {
                        return Err(ClassifierWireError::Corrupt(
                            "numeric children out of range",
                        ));
                    }
                }
                FlatKind::Cat => {
                    if attr[id] as usize >= n_attrs {
                        return Err(ClassifierWireError::Corrupt("split attribute out of range"));
                    }
                    let arity = n_children[id] as usize;
                    if arity == 0 {
                        return Err(ClassifierWireError::Corrupt(
                            "categorical split with no children",
                        ));
                    }
                    if fc <= id || arity > n_nodes || fc > n_nodes - arity {
                        return Err(ClassifierWireError::Corrupt(
                            "categorical children out of range",
                        ));
                    }
                }
            }
            if majority[id] as usize >= n_classes {
                return Err(ClassifierWireError::Corrupt("majority class out of range"));
            }
        }
        Ok(FlatTree {
            n_classes,
            kind,
            attr,
            threshold,
            first_child,
            n_children,
            majority,
            proba,
        })
    }

    /// Flatten a [`DecisionTree`] (BFS renumbering, so siblings are
    /// contiguous). Unreachable arena nodes left behind by pruning are
    /// dropped.
    pub(crate) fn from_decision_tree(t: &DecisionTree) -> Self {
        let n_classes = t.n_classes;
        let k = n_classes as f64;
        let mut flat = FlatTree {
            n_classes,
            kind: Vec::new(),
            attr: Vec::new(),
            threshold: Vec::new(),
            first_child: Vec::new(),
            n_children: Vec::new(),
            majority: Vec::new(),
            proba: Vec::new(),
        };
        // BFS over old ids; the queue position of an old id is its new id,
        // so all children pushed together end up contiguous.
        let mut queue: Vec<u32> = vec![0];
        let mut head = 0usize;
        while head < queue.len() {
            let node = &t.nodes[queue[head] as usize];
            head += 1;
            match &node.kind {
                NodeKind::Leaf => {
                    flat.kind.push(FlatKind::Leaf);
                    flat.attr.push(0);
                    flat.threshold.push(0.0);
                    flat.first_child.push(0);
                    flat.n_children.push(0);
                }
                NodeKind::Num {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    flat.kind.push(FlatKind::Num);
                    flat.attr.push(*attr);
                    flat.threshold.push(*threshold);
                    flat.first_child.push(queue.len() as u32);
                    flat.n_children.push(0);
                    queue.push(*left);
                    queue.push(*right);
                }
                NodeKind::Cat { attr, children } => {
                    flat.kind.push(FlatKind::Cat);
                    flat.attr.push(*attr);
                    flat.threshold.push(0.0);
                    flat.first_child.push(queue.len() as u32);
                    flat.n_children.push(children.len() as u32);
                    queue.extend(children.iter().copied());
                }
            }
            flat.majority.push(node.majority);
            // Same expression as `DecisionTree::predict_proba`, evaluated
            // once per node instead of once per call: bit-identical rows.
            debug_assert_eq!(node.counts.len(), n_classes);
            let n = node.n() as f64;
            flat.proba
                .extend(node.counts.iter().map(|&c| (c as f64 + 1.0) / (n + k)));
        }
        flat
    }
}

impl Classifier for FlatTree {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict(&self, x: &[f64]) -> ClassId {
        self.node_class(self.descend(x))
    }

    fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(self.proba_row(self.descend(x)));
    }

    fn complexity(&self) -> usize {
        self.n_nodes()
    }

    fn flatten(&self) -> Option<FlatTree> {
        Some(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision_tree::DecisionTreeLearner;
    use crate::majority::MajorityClassifier;
    use hom_data::{Attribute, Dataset, Schema};

    fn bits(p: &[f64]) -> Vec<u64> {
        p.iter().map(|v| v.to_bits()).collect()
    }

    /// Every probe must agree with the source tree to the bit — class
    /// and probability row alike.
    fn assert_flat_matches(t: &DecisionTree, probes: &[Vec<f64>]) {
        let flat = t.flatten().expect("decision trees flatten");
        assert!(flat.n_nodes() <= t.n_nodes());
        let k = t.n_classes();
        let mut want = vec![0.0; k];
        let mut got = vec![0.0; k];
        for x in probes {
            assert_eq!(flat.predict(x), t.predict(x), "class diverged on {x:?}");
            t.predict_proba(x, &mut want);
            flat.predict_proba(x, &mut got);
            assert_eq!(bits(&got), bits(&want), "proba diverged on {x:?}");
        }
    }

    #[test]
    fn numeric_tree_flattens_exactly() {
        let schema = Schema::new(
            vec![Attribute::numeric("x"), Attribute::numeric("y")],
            ["lo", "hi"],
        );
        let mut d = Dataset::new(schema);
        for i in 0..200 {
            let x = (i % 20) as f64 / 20.0;
            let y = (i % 7) as f64;
            d.push(&[x, y], u32::from(x > 0.6 || y > 5.0));
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        let probes: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 99.0, (i % 9) as f64])
            .collect();
        assert_flat_matches(&t, &probes);
    }

    #[test]
    fn categorical_tree_flattens_exactly_including_fallbacks() {
        let schema = Schema::new(
            vec![
                Attribute::categorical("a", ["p", "q", "r"]),
                Attribute::categorical("b", ["s", "t"]),
            ],
            ["neg", "pos"],
        );
        let mut d = Dataset::new(schema);
        for _rep in 0..6 {
            for a in 0..2 {
                for b in 0..2 {
                    d.push(&[a as f64, b as f64], u32::from(a == 1 && b == 1));
                }
            }
        }
        let t = DecisionTreeLearner::unpruned().fit_tree(&d);
        // Valid codes, the never-trained code 2, out-of-range, fractional
        // and negative values: all must take the same fallback path.
        let probes: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 0.0],
            vec![5.0, 1.0],
            vec![0.5, 0.0],
            vec![-1.0, 1.0],
            vec![0.0, -3.5],
        ];
        assert_flat_matches(&t, &probes);
    }

    #[test]
    fn mixed_tree_flattens_exactly() {
        let schema = Schema::new(
            vec![
                Attribute::categorical("c", ["p", "q"]),
                Attribute::numeric("x"),
            ],
            ["neg", "pos"],
        );
        let mut d = Dataset::new(schema);
        for i in 0..80 {
            let x = (i % 10) as f64 / 10.0;
            let c = f64::from(i % 2 == 0);
            d.push(&[c, x], u32::from(c == 1.0 && x > 0.5));
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        let probes: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 3) as f64, i as f64 / 40.0])
            .collect();
        assert_flat_matches(&t, &probes);
    }

    #[test]
    fn majority_flattens_to_single_leaf() {
        let m = MajorityClassifier::from_counts(&[3, 7, 2]);
        let flat = m.flatten().expect("majority flattens");
        assert_eq!(flat.n_nodes(), 1);
        for x in [vec![], vec![1.0, 2.0]] {
            assert_eq!(flat.predict(&x), m.predict(&x));
            let mut want = [0.0; 3];
            let mut got = [0.0; 3];
            m.predict_proba(&x, &mut want);
            flat.predict_proba(&x, &mut got);
            assert_eq!(bits(&got), bits(&want));
        }
    }

    #[test]
    fn flat_tree_reflattens_to_itself() {
        let m = MajorityClassifier::from_counts(&[1, 4]);
        let flat = m.flatten().unwrap();
        let again = flat.flatten().unwrap();
        assert_eq!(again.n_nodes(), flat.n_nodes());
        assert_eq!(again.predict(&[0.0]), flat.predict(&[0.0]));
    }

    #[test]
    fn nan_routes_like_source_tree() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for i in 0..60 {
            d.push(&[i as f64], u32::from(i >= 30));
        }
        let t = DecisionTreeLearner::new().fit_tree(&d);
        assert_flat_matches(&t, &[vec![f64::NAN]]);
    }
}
