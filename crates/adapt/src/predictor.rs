//! The adaptive lifecycle around one monitored stream.

use std::collections::VecDeque;
use std::sync::Arc;

use hom_classifiers::{Classifier, HoeffdingParams, HoeffdingTree};
use hom_cluster::model_similarity;
use hom_core::{FilterState, HighOrderModel};
use hom_data::ClassId;
use hom_obs::Obs;

use crate::detector::NoveltyDetector;
use crate::{AdaptConfigError, AdaptOptions};

/// Which side of the lifecycle the predictor is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Evidence says a mined concept explains the stream: predictions
    /// come from the high-order filter (Eq. 10, pruned).
    OnModel,
    /// Evidence says no mined concept fits: predictions come from the
    /// incremental fallback learner while the segment is buffered for
    /// admission.
    Fallback,
}

/// A lifecycle transition reported by [`AdaptivePredictor::step`].
#[derive(Clone)]
pub enum AdaptEvent {
    /// The detector fired: the stream left the mined concept space; the
    /// predictor switched to the fallback learner.
    Triggered,
    /// Evidence recovered before admission (a false alarm, or a brief
    /// excursion): back on-model, the buffered segment discarded.
    Recovered {
        /// Labeled records spent in fallback.
        latency: usize,
    },
    /// The buffered segment was admitted into the model. The caller (a
    /// serving layer) should hot-swap `model` in for all streams; this
    /// predictor has already migrated itself.
    Admitted {
        /// The extended (or stats-updated) model.
        model: Arc<HighOrderModel>,
        /// Concept id the segment landed on.
        concept: usize,
        /// `true` if a brand-new concept was admitted; `false` if the
        /// segment matched a known concept (recorded as an occurrence).
        novel: bool,
        /// Labeled records spent in fallback before admission.
        latency: usize,
        /// Eq. 4 similarity to the best-matching existing concept.
        best_similarity: f64,
    },
}

/// One stream's predictor that **detects** when the stream leaves the
/// mined concept space, **degrades** to an incremental fallback learner
/// while it is off-model, and **repairs** the model by admitting the
/// observed segment — the full maintenance loop of the crate docs.
///
/// Deterministic: same records in, same predictions and transitions
/// out. No RNG, no wall clock; the fallback learner is a Hoeffding tree
/// whose splits depend only on the records replayed into it.
pub struct AdaptivePredictor {
    model: Arc<HighOrderModel>,
    state: FilterState,
    detector: NoveltyDetector,
    opts: AdaptOptions,
    mode: Mode,
    /// The fallback learner, alive only in [`Mode::Fallback`].
    fallback: Option<HoeffdingTree>,
    /// The buffered off-model segment (features + labels) admission
    /// will cluster against the mined concepts.
    segment: Vec<(Vec<f64>, ClassId)>,
    /// Prequential fallback mistakes over the whole segment.
    seg_errors: usize,
    /// Sliding record of the last `2 · window` fallback mistakes, for
    /// the plateau test (last window vs the window before it).
    recent_errors: VecDeque<bool>,
    /// Labeled records absorbed in total (evidence series index).
    ticks: u64,
    obs: Obs,
}

impl AdaptivePredictor {
    /// A predictor for `model` starting at the uniform prior, with
    /// validated options.
    pub fn new(model: Arc<HighOrderModel>, opts: AdaptOptions) -> Result<Self, AdaptConfigError> {
        opts.validate()?;
        let state = FilterState::new(&model);
        let detector = NoveltyDetector::new(opts.window);
        let obs = opts.sink.clone();
        Ok(AdaptivePredictor {
            model,
            state,
            detector,
            opts,
            mode: Mode::OnModel,
            fallback: None,
            segment: Vec::new(),
            seg_errors: 0,
            recent_errors: VecDeque::new(),
            ticks: 0,
            obs,
        })
    }

    /// The model currently predicted with (grows across admissions).
    pub fn model(&self) -> &Arc<HighOrderModel> {
        &self.model
    }

    /// Current lifecycle mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The filter state (kept current in both modes — evidence keeps
    /// flowing through the filter even while the fallback predicts).
    pub fn state(&self) -> &FilterState {
        &self.state
    }

    /// Labeled records currently buffered for admission (0 on-model).
    pub fn segment_len(&self) -> usize {
        self.segment.len()
    }

    /// Prequential error of the fallback over the buffered segment
    /// (`None` on-model or before the first fallback prediction).
    pub fn fallback_error(&self) -> Option<f64> {
        if self.mode != Mode::Fallback || self.segment.is_empty() {
            return None;
        }
        Some(self.seg_errors as f64 / self.segment.len() as f64)
    }

    /// Classify an unlabeled record with whatever the current mode
    /// trusts (never panics, regardless of mode).
    pub fn predict(&mut self, x: &[f64]) -> ClassId {
        match (&self.mode, &self.fallback) {
            (Mode::Fallback, Some(tree)) => tree.predict(x),
            _ => self.state.predict_pruned(&self.model, x).0,
        }
    }

    /// The full labeled-record lifecycle: predict, absorb, update the
    /// detector, and run the mode machine. Returns the prediction and
    /// the lifecycle transition this record caused, if any.
    pub fn step(&mut self, x: &[f64], y: ClassId) -> (ClassId, Option<AdaptEvent>) {
        self.ticks += 1;
        let pred = self.predict(x);

        // Evidence always flows through the filter, in both modes: it is
        // what recovery and the admission decision read.
        self.state.absorb(&self.model, x, y);
        let likelihood = self.state.last_likelihood();
        let entropy = self.state.posterior_entropy();
        self.state.roll_prior(&self.model);
        self.detector.push(likelihood, entropy);
        if self.obs.enabled() && self.ticks.is_multiple_of(self.opts.window as u64) {
            self.obs.series(
                "adapt.evidence",
                self.ticks,
                &[
                    self.detector.mean_likelihood(),
                    self.detector.mean_entropy(),
                ],
            );
        }

        let event = match self.mode {
            Mode::OnModel => self.check_trigger(),
            Mode::Fallback => self.step_fallback(x, y, pred),
        };
        (pred, event)
    }

    /// Absorb one evidence observation that did **not** come from a
    /// record of this stream — fleet-wide mean likelihood and entropy
    /// aggregated by a serving engine — and run the trigger check.
    ///
    /// This is how fleet-level drift reaches the maintenance loop: the
    /// monitored stream may still look healthy while the serving fleet's
    /// pooled Eq. 7 likelihood collapses. The evidence goes through the
    /// same [`NoveltyDetector`] window as per-record evidence, so a
    /// trigger still demands a full window of sustained degradation,
    /// and a fleet-triggered fallback then buffers the monitor stream's
    /// own labeled records exactly like a locally-triggered one. Only
    /// meaningful on-model; while in fallback the evidence still slides
    /// the window (recovery reads it) but cannot re-trigger.
    pub fn push_evidence(&mut self, likelihood: f64, entropy: f64) -> Option<AdaptEvent> {
        self.detector.push(likelihood, entropy);
        match self.mode {
            Mode::OnModel => self.check_trigger(),
            Mode::Fallback => None,
        }
    }

    /// The on-model → fallback transition, shared by [`Self::step`] and
    /// [`Self::push_evidence`].
    fn check_trigger(&mut self) -> Option<AdaptEvent> {
        if !self.detector.off_model(&self.opts) {
            return None;
        }
        // Trigger: a *fresh* fallback, deliberately not warm-started on
        // the records already seen. The trigger window straddles the
        // change point, so replaying it would mix old-concept labels
        // into the tree's first — irreversible — split decision and can
        // anchor it on the wrong attribute for the rest of the segment.
        // The grace period scales down with the evidence window so the
        // tree can actually split within a short segment — a leaf-only
        // tree predicts a constant, which would spuriously "match" any
        // constant-ish concept in the Eq. 4 similarity check at
        // admission.
        let params = HoeffdingParams {
            grace_period: self.opts.window.min(200),
            ..HoeffdingParams::default()
        };
        self.fallback = Some(HoeffdingTree::new(Arc::clone(self.model.schema()), params));
        self.segment = Vec::new();
        self.seg_errors = 0;
        self.recent_errors.clear();
        self.mode = Mode::Fallback;
        if self.obs.enabled() {
            self.obs.count("adapt.triggers", 1);
            self.obs
                .gauge("adapt.trigger_likelihood", self.detector.mean_likelihood());
        }
        Some(AdaptEvent::Triggered)
    }

    fn step_fallback(&mut self, x: &[f64], y: ClassId, pred: ClassId) -> Option<AdaptEvent> {
        // Prequential accounting: `pred` was made before this label.
        let wrong = pred != y;
        self.seg_errors += usize::from(wrong);
        if self.recent_errors.len() == 2 * self.opts.window {
            self.recent_errors.pop_front();
        }
        self.recent_errors.push_back(wrong);

        let tree = self.fallback.as_mut().expect("fallback mode has a tree");
        tree.update(x, y);
        self.segment.push((x.to_vec(), y));

        // Recovery: the filter's likelihood went healthy again before
        // admission — the excursion was noise or a brief revisit. (Not
        // merely `!off_model`: see `NoveltyDetector::back_on_model`.)
        if self.detector.back_on_model(&self.opts) {
            let latency = self.segment.len();
            self.leave_fallback();
            if self.obs.enabled() {
                self.obs.count("adapt.recoveries", 1);
                self.obs.gauge("adapt.recovery_latency", latency as f64);
            }
            return Some(AdaptEvent::Recovered { latency });
        }

        // Admission: enough segment, and the fallback's error plateaued —
        // its rate over the last window is no longer improving on the
        // window before it (or the hard cap forces the issue). The
        // comparison is window-vs-window, not window-vs-overall: the
        // whole-segment rate carries the learner's early mistakes
        // forever and would keep "improving" at 1/n long after the tree
        // converged.
        if self.segment.len() < self.opts.min_segment {
            return None;
        }
        let w = self.opts.window;
        let plateaued = self.recent_errors.len() == 2 * w && {
            let prev = self.recent_errors.iter().take(w).filter(|&&e| e).count();
            let last = self.recent_errors.iter().skip(w).filter(|&&e| e).count();
            (last as f64 - prev as f64).abs() / w as f64 <= self.opts.stabilize_tol
        };
        if !plateaued && self.segment.len() < self.opts.max_segment {
            return None;
        }
        Some(self.admit())
    }

    /// Cluster the buffered segment against the mined concepts (Eq. 4 on
    /// the segment's own records) and extend the model accordingly; then
    /// migrate this predictor onto the new model.
    fn admit(&mut self) -> AdaptEvent {
        let tree = self.fallback.take().expect("fallback mode has a tree");
        let segment = std::mem::take(&mut self.segment);
        let latency = segment.len();

        let (best, best_similarity) = {
            let sample = segment.iter().map(|(x, _)| x.as_slice());
            let mut best = (0usize, f64::NEG_INFINITY);
            for (i, concept) in self.model.concepts().iter().enumerate() {
                let sim = model_similarity(&tree, concept.model.as_ref(), sample.clone());
                if sim > best.1 {
                    best = (i, sim);
                }
            }
            best
        };

        let err = self.seg_errors as f64 / latency as f64;
        let novel = best_similarity < self.opts.match_threshold;
        let (new_model, concept) = if novel {
            let m = self.model.admit_concept(Arc::new(tree), err, latency);
            let id = m.n_concepts() - 1;
            (Arc::new(m), id)
        } else {
            (Arc::new(self.model.record_occurrence(best, latency)), best)
        };

        self.state = self.state.migrate(&new_model);
        self.model = Arc::clone(&new_model);
        self.leave_fallback();
        if self.obs.enabled() {
            self.obs.count(
                if novel {
                    "adapt.admissions_novel"
                } else {
                    "adapt.admissions_matched"
                },
                1,
            );
            self.obs.gauge("adapt.admission_latency", latency as f64);
            self.obs
                .gauge("adapt.admission_similarity", best_similarity);
        }
        AdaptEvent::Admitted {
            model: new_model,
            concept,
            novel,
            latency,
            best_similarity,
        }
    }

    /// Common cleanup of both fallback exits (recovery and admission).
    fn leave_fallback(&mut self) {
        self.mode = Mode::OnModel;
        self.fallback = None;
        self.segment = Vec::new();
        self.seg_errors = 0;
        self.recent_errors.clear();
        // Old evidence mixes generations (and triggered once already):
        // demand a fresh full window before the detector may fire again.
        self.detector.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::MajorityClassifier;
    use hom_core::{Concept, TransitionStats};
    use hom_data::{Attribute, Schema};

    /// Two constant-prediction concepts over one numeric attribute.
    fn toy_model() -> Arc<HighOrderModel> {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 0])),
                err: 0.05,
                n_records: 100,
                n_occurrences: 1,
            },
            Concept {
                id: 1,
                model: Arc::new(MajorityClassifier::from_counts(&[0, 10])),
                err: 0.05,
                n_records: 100,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 100), (1, 100)]);
        Arc::new(HighOrderModel::from_parts(schema, concepts, stats))
    }

    fn opts() -> AdaptOptions {
        AdaptOptions {
            window: 20,
            min_segment: 60,
            max_segment: 200,
            ..Default::default()
        }
    }

    #[test]
    fn stays_on_model_while_a_concept_fits() {
        let mut p = AdaptivePredictor::new(toy_model(), opts()).unwrap();
        for _ in 0..200 {
            let (_, event) = p.step(&[0.0], 1);
            assert!(event.is_none(), "constant concept-1 labels fit the model");
        }
        assert_eq!(p.mode(), Mode::OnModel);
        assert_eq!(p.predict(&[0.0]), 1);
    }

    /// Labels alternating every record fit neither constant concept: the
    /// likelihood collapses, entropy saturates, the detector fires, the
    /// fallback takes over, and the segment is eventually admitted as a
    /// novel concept with a re-normalized kernel.
    #[test]
    fn detects_and_admits_a_novel_concept() {
        let mut p = AdaptivePredictor::new(toy_model(), opts()).unwrap();
        for _ in 0..50 {
            p.step(&[0.0], 1); // settle on concept 1
        }
        let mut triggered_at = None;
        let mut admitted = None;
        // novel regime: y = x (threshold at 0.5), alternating inputs
        for t in 0..400u32 {
            let x = f64::from(t % 2);
            let y = t % 2;
            let (_, event) = p.step(&[x], y);
            match event {
                Some(AdaptEvent::Triggered) => {
                    assert!(triggered_at.is_none(), "one trigger only");
                    triggered_at = Some(t);
                }
                Some(AdaptEvent::Admitted {
                    model,
                    concept,
                    novel,
                    latency,
                    ..
                }) => {
                    assert!(novel, "alternating labels match no constant concept");
                    assert_eq!(concept, 2);
                    assert_eq!(model.n_concepts(), 3);
                    assert!(latency >= 60);
                    admitted = Some(model);
                }
                _ => {}
            }
        }
        let triggered_at = triggered_at.expect("detector must fire");
        assert!(
            triggered_at < 2 * 20,
            "trigger within two windows, got {triggered_at}"
        );
        let model = admitted.expect("segment must be admitted");
        // χ is a valid kernel over the grown space
        for i in 0..3 {
            let sum: f64 = (0..3).map(|j| model.stats().chi(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i}");
        }
        assert_eq!(p.mode(), Mode::OnModel);
        assert_eq!(p.model().n_concepts(), 3);
        // the admitted concept now explains the regime: the new model
        // predicts it without fallback
        for t in 0..100u32 {
            let (_, event) = p.step(&[f64::from(t % 2)], t % 2);
            assert!(event.is_none(), "admitted concept explains the stream");
        }
        let correct = (0..20u32)
            .filter(|&t| p.predict(&[f64::from(t % 2)]) == t % 2)
            .count();
        assert!(correct >= 18, "post-admission accuracy: {correct}/20");
    }

    /// A segment that matches a known concept is recorded as an
    /// occurrence, not admitted as new.
    #[test]
    fn matching_segment_is_a_recurrence() {
        // Model with concepts "always 0" and "always 1" but stats that
        // make switching look implausible: force the detector to fire by
        // feeding the *other* constant after settling, with a tiny
        // entropy threshold so confusion registers.
        let mut o = opts();
        o.match_threshold = 0.8;
        let mut p = AdaptivePredictor::new(toy_model(), o).unwrap();
        for _ in 0..100 {
            p.step(&[0.0], 1);
        }
        // Alternate long runs: 40 of label 0, 40 of label 1, repeatedly.
        // Within a window of 20 this keeps the posterior churning and
        // the likelihood mid-range… but each run is a known concept, so
        // if admission happens the fallback tree (which learns to
        // predict the majority of the segment) matches a constant.
        let mut admitted = None;
        for t in 0..800u32 {
            let y = u32::from((t / 40) % 2 == 0);
            let (_, event) = p.step(&[0.0], y);
            if let Some(AdaptEvent::Admitted { novel, concept, .. }) = event {
                admitted = Some((novel, concept));
                break;
            }
        }
        // The churn may resolve as recovery instead of admission — both
        // are sound; only a *novel* admission would be wrong here, since
        // every label is explained by an existing concept.
        if let Some((novel, concept)) = admitted {
            assert!(!novel, "segment of known labels must match, not admit");
            assert!(concept < 2);
            assert_eq!(p.model().n_concepts(), 2);
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        let err = AdaptivePredictor::new(
            toy_model(),
            AdaptOptions {
                window: 0,
                ..Default::default()
            },
        )
        .err()
        .expect("zero window must be rejected");
        assert_eq!(err, AdaptConfigError::ZeroCount("window"));
    }

    #[test]
    fn steps_are_deterministic() {
        let drive = || {
            let mut p = AdaptivePredictor::new(toy_model(), opts()).unwrap();
            let mut preds = Vec::new();
            for t in 0..500u32 {
                let x = f64::from(t % 2);
                let y = u32::from(t > 100) * (t % 2);
                preds.push(p.step(&[x], y).0);
            }
            (preds, p.model().n_concepts())
        };
        assert_eq!(drive(), drive());
    }
}
