//! `hom-adapt` — novel-concept detection and live model maintenance.
//!
//! The paper mines the high-order model **once** from historical data and
//! assumes the stream forever revisits those concepts. Real streams do
//! not oblige: sooner or later the data enters a concept the history
//! never contained, and the Bayesian filter (Eqs. 7–9) — which can only
//! redistribute belief among mined concepts — quietly serves the least
//! bad wrong answer. This crate closes the loop with three cooperating
//! pieces, none of which touches the filter's mathematics:
//!
//! 1. **Detect** ([`NoveltyDetector`]): the filter already computes the
//!    evidence. The Eq. 7 normalizer `Σ_c Pₜ⁻(c)·ψ(c, yₜ)` — exposed as
//!    [`hom_core::FilterState::last_likelihood`] — sits near `1 − Err`
//!    of the active concept while *some* concept explains the labels,
//!    and collapses when none does; simultaneously the posterior stops
//!    settling and its normalized entropy
//!    ([`hom_core::FilterState::posterior_entropy`]) saturates. The
//!    detector fires when the windowed means of **both** signals cross
//!    their thresholds ([`AdaptOptions`]) — either alone is a false-alarm
//!    generator (label noise dents the likelihood; slow concept switches
//!    raise the entropy).
//! 2. **Degrade** ([`AdaptivePredictor`]): while off-model, predictions
//!    come from an incremental fallback learner
//!    ([`hom_classifiers::HoeffdingTree`]) started fresh at the trigger
//!    (records preceding it straddle the change point and would poison
//!    the tree's first, irreversible split) — the serving path never
//!    panics and is never worse than running the fallback standalone,
//!    because that is exactly what it serves off-model.
//! 3. **Repair** ([`AdaptivePredictor`] → [`AdaptiveEngine`]): the
//!    off-model segment is buffered until the fallback's prequential
//!    error plateaus, then clustered against the mined concepts with the
//!    Eq. 4 prediction-agreement similarity
//!    ([`hom_cluster::model_similarity`]) on the segment's own records.
//!    A match becomes a new historical occurrence
//!    ([`hom_core::HighOrderModel::record_occurrence`]); a miss admits
//!    the fallback as a **new concept**
//!    ([`hom_core::HighOrderModel::admit_concept`]), with the transition
//!    kernel χ re-normalized from the updated totals (Eq. 6). Either way
//!    the result is a *new immutable model*; [`AdaptiveEngine`] hot-swaps
//!    it into a [`hom_serve::ServeEngine`] under load, migrating every
//!    live and parked [`hom_core::FilterState`].
//!
//! Everything is deterministic: the detector is windowed arithmetic, the
//! fallback's splits depend only on the replayed records, and the swap
//! migration is bit-exact — the same stream produces the same triggers,
//! admissions and predictions at any thread count.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use hom_adapt::{AdaptEvent, AdaptOptions, AdaptiveEngine};
//! use hom_classifiers::MajorityClassifier;
//! use hom_core::{Concept, HighOrderModel, TransitionStats};
//! use hom_data::{Attribute, Schema};
//!
//! // Normally `hom_core::build` mines the model; hand-build a tiny one.
//! let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
//! let concepts = vec![
//!     Concept { id: 0, model: Arc::new(MajorityClassifier::from_counts(&[9, 1])),
//!               err: 0.1, n_records: 50, n_occurrences: 1 },
//!     Concept { id: 1, model: Arc::new(MajorityClassifier::from_counts(&[1, 9])),
//!               err: 0.1, n_records: 50, n_occurrences: 1 },
//! ];
//! let stats = TransitionStats::from_occurrences(2, &[(0, 50), (1, 50)]);
//! let model = Arc::new(HighOrderModel::from_parts(schema, concepts, stats));
//!
//! let opts = AdaptOptions { window: 20, min_segment: 40, max_segment: 120,
//!                           ..Default::default() };
//! let engine = AdaptiveEngine::new(model, opts);
//! // Labels neither constant concept explains: alternating every record.
//! let mut admitted = false;
//! for t in 0..400u32 {
//!     let (_, event) = engine.step_monitor(&[f64::from(t % 2)], t % 2);
//!     if let Some(AdaptEvent::Admitted { novel, .. }) = event {
//!         admitted = novel;
//!         break;
//!     }
//! }
//! assert!(admitted, "the unexplained regime becomes a third concept");
//! assert_eq!(engine.model().n_concepts(), 3);
//! ```
//!
//! # Environment knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | [`WINDOW_ENV`] (`HOM_ADAPT_WINDOW`) | evidence window, labeled records |
//! | [`LIKELIHOOD_ENV`] (`HOM_ADAPT_LIKELIHOOD`) | likelihood trigger threshold |
//! | [`ENTROPY_ENV`] (`HOM_ADAPT_ENTROPY`) | entropy trigger threshold |
//! | [`MIN_SEGMENT_ENV`] (`HOM_ADAPT_MIN_SEGMENT`) | min segment before admission |
//! | [`MAX_SEGMENT_ENV`] (`HOM_ADAPT_MAX_SEGMENT`) | segment size forcing admission |
//! | [`MATCH_ENV`] (`HOM_ADAPT_MATCH`) | Eq. 4 recurrence-vs-novel threshold |
//!
//! Invalid values are **typed errors** ([`AdaptConfigError`]) at
//! construction, never silent clamps — same contract as `hom-serve`'s
//! `ConfigError`.

#![warn(missing_docs)]

pub mod detector;
pub mod engine;
pub mod options;
pub mod predictor;

pub use detector::NoveltyDetector;
pub use engine::{AdaptiveEngine, EngineConfigError, IncidentDump, SwapPropagator};
pub use options::{
    AdaptConfigError, AdaptOptions, ENTROPY_ENV, LIKELIHOOD_ENV, MATCH_ENV, MAX_SEGMENT_ENV,
    MIN_SEGMENT_ENV, WINDOW_ENV,
};
pub use predictor::{AdaptEvent, AdaptivePredictor, Mode};
