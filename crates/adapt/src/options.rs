//! Configuration of the novelty detector and the admission policy.

use std::fmt;

use hom_obs::Obs;

/// `HOM_ADAPT_WINDOW` — evidence window in labeled records.
pub const WINDOW_ENV: &str = "HOM_ADAPT_WINDOW";
/// `HOM_ADAPT_LIKELIHOOD` — windowed-mean likelihood trigger threshold.
pub const LIKELIHOOD_ENV: &str = "HOM_ADAPT_LIKELIHOOD";
/// `HOM_ADAPT_ENTROPY` — windowed-mean entropy trigger threshold.
pub const ENTROPY_ENV: &str = "HOM_ADAPT_ENTROPY";
/// `HOM_ADAPT_MIN_SEGMENT` — labeled records buffered before admission.
pub const MIN_SEGMENT_ENV: &str = "HOM_ADAPT_MIN_SEGMENT";
/// `HOM_ADAPT_MAX_SEGMENT` — segment size at which admission is forced.
pub const MAX_SEGMENT_ENV: &str = "HOM_ADAPT_MAX_SEGMENT";
/// `HOM_ADAPT_MATCH` — Eq. 4 similarity above which a segment is a
/// recurrence of a known concept rather than a novel one.
pub const MATCH_ENV: &str = "HOM_ADAPT_MATCH";

/// A rejected [`AdaptOptions`] value — like `hom-serve`'s `ConfigError`,
/// invalid knobs are typed errors, never silently clamped.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptConfigError {
    /// A count knob ([`AdaptOptions::window`],
    /// [`AdaptOptions::min_segment`], [`AdaptOptions::max_segment`])
    /// is zero.
    ZeroCount(&'static str),
    /// [`AdaptOptions::max_segment`] is smaller than
    /// [`AdaptOptions::min_segment`] — admission could never trigger.
    SegmentBoundsInverted {
        /// Configured minimum segment length.
        min: usize,
        /// Configured (smaller) maximum segment length.
        max: usize,
    },
    /// A probability-valued knob is outside `(0, 1)`.
    ThresholdOutOfRange {
        /// Which knob.
        name: &'static str,
        /// The rejected value.
        got: f64,
    },
}

impl fmt::Display for AdaptConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptConfigError::ZeroCount(name) => {
                write!(f, "{name} must be nonzero")
            }
            AdaptConfigError::SegmentBoundsInverted { min, max } => write!(
                f,
                "max_segment ({max}) must be at least min_segment ({min})"
            ),
            AdaptConfigError::ThresholdOutOfRange { name, got } => {
                write!(f, "{name} must lie strictly between 0 and 1, got {got}")
            }
        }
    }
}

impl std::error::Error for AdaptConfigError {}

/// Tuning of the windowed novelty detector and the admission policy.
///
/// The detector watches two pieces of evidence the filter computes
/// anyway ([`hom_core::FilterState::last_likelihood`] — the Eq. 7
/// normalizer — and [`hom_core::FilterState::posterior_entropy`]) over a
/// sliding window of the last [`Self::window`] labeled records, and
/// declares the stream **off-model** when the windowed means cross both
/// thresholds at once: likelihood collapsed *and* the posterior unable
/// to settle. See `ARCHITECTURE.md` §"Model maintenance & novelty" for
/// how the defaults were derived.
#[derive(Debug, Clone)]
pub struct AdaptOptions {
    /// Sliding evidence window, in labeled records (default 60). Larger
    /// windows trade detection latency for false-alarm robustness.
    pub window: usize,
    /// Trigger when the windowed mean of the marginal likelihood
    /// `Σ_c Pₜ⁻(c)·ψ(c, yₜ)` falls below this (default 0.7). On-model
    /// the mean sits near `1 − Err` of the active concept (≈ 0.9+);
    /// off-model it collapses toward the concepts' error rates.
    pub likelihood_threshold: f64,
    /// …and the windowed mean of the normalized posterior entropy
    /// `H(P_t)/ln N` exceeds this (default 0.25). Requiring **both**
    /// signals suppresses false alarms from brief label noise (which
    /// dents the likelihood but not sustained entropy) and from slow
    /// concept switches (high entropy but healthy likelihood).
    pub entropy_threshold: f64,
    /// Labeled records of the off-model segment to buffer before
    /// admission is considered (default 200). Bounds detection-to-repair
    /// latency from below; admission also needs the fallback's error to
    /// plateau.
    pub min_segment: usize,
    /// Segment size at which admission is forced even if the fallback's
    /// error has not plateaued (default 1200). Bounds the fallback
    /// period from above.
    pub max_segment: usize,
    /// Fallback prequential error is considered plateaued when its rate
    /// over the last [`Self::window`] records is within this of the rate
    /// over the window before it (default 0.05) — i.e. the learner has
    /// stopped improving, so the segment is ready to be clustered.
    pub stabilize_tol: f64,
    /// Eq. 4 model similarity (fraction of agreeing predictions on the
    /// buffered segment) at or above which the segment is admitted as a
    /// **recurrence** of the best-matching known concept; below it, as a
    /// **novel** concept (default 0.9).
    pub match_threshold: f64,
    /// Observability sink for the detector/lifecycle events (defaults to
    /// [`Obs::from_env`]: disabled unless `HOM_TRACE=path.jsonl`).
    pub sink: Obs,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            window: 60,
            likelihood_threshold: 0.7,
            entropy_threshold: 0.25,
            min_segment: 200,
            max_segment: 1200,
            stabilize_tol: 0.05,
            match_threshold: 0.9,
            sink: Obs::from_env(),
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

impl AdaptOptions {
    /// Defaults overridden by any `HOM_ADAPT_*` environment knobs
    /// ([`WINDOW_ENV`], [`LIKELIHOOD_ENV`], [`ENTROPY_ENV`],
    /// [`MIN_SEGMENT_ENV`], [`MAX_SEGMENT_ENV`], [`MATCH_ENV`]). Values
    /// are taken as-is — [`Self::validate`] rejects invalid ones with a
    /// typed error when the options are used.
    pub fn from_env() -> Self {
        let mut o = AdaptOptions::default();
        if let Some(v) = env_usize(WINDOW_ENV) {
            o.window = v;
        }
        if let Some(v) = env_f64(LIKELIHOOD_ENV) {
            o.likelihood_threshold = v;
        }
        if let Some(v) = env_f64(ENTROPY_ENV) {
            o.entropy_threshold = v;
        }
        if let Some(v) = env_usize(MIN_SEGMENT_ENV) {
            o.min_segment = v;
        }
        if let Some(v) = env_usize(MAX_SEGMENT_ENV) {
            o.max_segment = v;
        }
        if let Some(v) = env_f64(MATCH_ENV) {
            o.match_threshold = v;
        }
        o
    }

    /// Reject invalid knobs with a typed [`AdaptConfigError`] instead of
    /// clamping: zero counts, inverted segment bounds, and thresholds
    /// outside `(0, 1)` are configuration mistakes the operator should
    /// see, not values to silently "fix".
    pub fn validate(&self) -> Result<(), AdaptConfigError> {
        if self.window == 0 {
            return Err(AdaptConfigError::ZeroCount("window"));
        }
        if self.min_segment == 0 {
            return Err(AdaptConfigError::ZeroCount("min_segment"));
        }
        if self.max_segment == 0 {
            return Err(AdaptConfigError::ZeroCount("max_segment"));
        }
        if self.max_segment < self.min_segment {
            return Err(AdaptConfigError::SegmentBoundsInverted {
                min: self.min_segment,
                max: self.max_segment,
            });
        }
        for (name, v) in [
            ("likelihood_threshold", self.likelihood_threshold),
            ("entropy_threshold", self.entropy_threshold),
            ("stabilize_tol", self.stabilize_tol),
            ("match_threshold", self.match_threshold),
        ] {
            if !(v > 0.0 && v < 1.0) {
                return Err(AdaptConfigError::ThresholdOutOfRange { name, got: v });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AdaptOptions::default().validate().expect("defaults valid");
    }

    #[test]
    fn zero_window_is_a_typed_error() {
        let o = AdaptOptions {
            window: 0,
            ..Default::default()
        };
        assert_eq!(o.validate(), Err(AdaptConfigError::ZeroCount("window")));
    }

    #[test]
    fn inverted_segment_bounds_are_rejected() {
        let o = AdaptOptions {
            min_segment: 500,
            max_segment: 100,
            ..Default::default()
        };
        assert_eq!(
            o.validate(),
            Err(AdaptConfigError::SegmentBoundsInverted { min: 500, max: 100 })
        );
    }

    #[test]
    fn out_of_range_thresholds_are_rejected() {
        for bad in [0.0, 1.0, -0.2, 1.5] {
            let o = AdaptOptions {
                likelihood_threshold: bad,
                ..Default::default()
            };
            let err = o.validate().expect_err("must reject");
            assert!(
                matches!(err, AdaptConfigError::ThresholdOutOfRange { name, .. }
                    if name == "likelihood_threshold"),
                "bad = {bad}: {err}"
            );
            assert!(err.to_string().contains("between 0 and 1"));
        }
    }
}
