//! The windowed novelty detector over the filter's own evidence.

use std::collections::VecDeque;

use crate::AdaptOptions;

/// Sliding-window means of the filter's two novelty signals: the
/// marginal likelihood of each absorbed label (the Eq. 7 normalizer,
/// [`hom_core::FilterState::last_likelihood`]) and the normalized
/// posterior entropy ([`hom_core::FilterState::posterior_entropy`]).
///
/// The detector holds no opinion about *when* to act — it only answers
/// [`Self::off_model`]: are both windowed means across their thresholds
/// with a full window of evidence? The [`crate::AdaptivePredictor`]
/// turns that into trigger/recover transitions. Purely deterministic:
/// same evidence sequence, same answers, no RNG, no clock.
#[derive(Debug, Clone)]
pub struct NoveltyDetector {
    window: usize,
    lik: VecDeque<f64>,
    ent: VecDeque<f64>,
    lik_sum: f64,
    ent_sum: f64,
}

impl NoveltyDetector {
    /// An empty detector with the given window (records).
    ///
    /// # Panics
    /// Panics if `window` is zero (rejected earlier by
    /// [`AdaptOptions::validate`]).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be nonzero");
        NoveltyDetector {
            window,
            lik: VecDeque::with_capacity(window),
            ent: VecDeque::with_capacity(window),
            lik_sum: 0.0,
            ent_sum: 0.0,
        }
    }

    /// Absorb one labeled record's evidence.
    pub fn push(&mut self, likelihood: f64, entropy: f64) {
        if self.lik.len() == self.window {
            self.lik_sum -= self.lik.pop_front().expect("window nonempty");
            self.ent_sum -= self.ent.pop_front().expect("window nonempty");
        }
        self.lik.push_back(likelihood);
        self.ent.push_back(entropy);
        self.lik_sum += likelihood;
        self.ent_sum += entropy;
    }

    /// Whether a full window of evidence has accumulated. Until then the
    /// detector never fires — a half-empty window after a reset would
    /// otherwise make a handful of noisy labels look sustained.
    pub fn full(&self) -> bool {
        self.lik.len() == self.window
    }

    /// Windowed mean of the marginal likelihood (1.0 when empty).
    pub fn mean_likelihood(&self) -> f64 {
        if self.lik.is_empty() {
            return 1.0;
        }
        self.lik_sum / self.lik.len() as f64
    }

    /// Windowed mean of the normalized posterior entropy (0.0 when
    /// empty).
    pub fn mean_entropy(&self) -> f64 {
        if self.ent.is_empty() {
            return 0.0;
        }
        self.ent_sum / self.ent.len() as f64
    }

    /// The off-model verdict: a full window whose mean likelihood has
    /// collapsed below the threshold **and** whose mean entropy has
    /// saturated above it. Both at once — see
    /// [`AdaptOptions::entropy_threshold`] for why either alone is not
    /// enough.
    pub fn off_model(&self, opts: &AdaptOptions) -> bool {
        self.full()
            && self.mean_likelihood() < opts.likelihood_threshold
            && self.mean_entropy() > opts.entropy_threshold
    }

    /// The recovery verdict: a full window whose mean likelihood is back
    /// **at or above** the threshold — the model explains the labels
    /// again. Deliberately *not* the negation of [`Self::off_model`]: in
    /// an off-model regime the posterior eventually concentrates on the
    /// least-bad mined concept, which lowers the entropy below its
    /// threshold without the model fitting any better. Entropy settling
    /// alone must therefore never count as recovery; only the likelihood
    /// can clear the stream.
    pub fn back_on_model(&self, opts: &AdaptOptions) -> bool {
        self.full() && self.mean_likelihood() >= opts.likelihood_threshold
    }

    /// Drop all evidence (called after a model swap: the old means mix
    /// generations).
    pub fn reset(&mut self) {
        self.lik.clear();
        self.ent.clear();
        self.lik_sum = 0.0;
        self.ent_sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AdaptOptions {
        AdaptOptions {
            window: 4,
            likelihood_threshold: 0.7,
            entropy_threshold: 0.25,
            ..Default::default()
        }
    }

    #[test]
    fn never_fires_before_the_window_fills() {
        let o = opts();
        let mut d = NoveltyDetector::new(o.window);
        for _ in 0..3 {
            d.push(0.1, 0.9); // maximally alarming evidence
            assert!(!d.off_model(&o), "partial window must not fire");
        }
        d.push(0.1, 0.9);
        assert!(d.off_model(&o));
    }

    #[test]
    fn needs_both_signals() {
        let o = opts();
        // likelihood collapsed, entropy fine (label noise shape)
        let mut d = NoveltyDetector::new(o.window);
        for _ in 0..4 {
            d.push(0.1, 0.1);
        }
        assert!(!d.off_model(&o));
        // entropy saturated, likelihood fine (slow-switch shape)
        let mut d = NoveltyDetector::new(o.window);
        for _ in 0..4 {
            d.push(0.9, 0.9);
        }
        assert!(!d.off_model(&o));
    }

    #[test]
    fn window_slides_and_recovers() {
        let o = opts();
        let mut d = NoveltyDetector::new(o.window);
        for _ in 0..4 {
            d.push(0.2, 0.8);
        }
        assert!(d.off_model(&o));
        // healthy evidence pushes the bad window out
        for _ in 0..4 {
            d.push(0.95, 0.05);
        }
        assert!(!d.off_model(&o));
        assert!((d.mean_likelihood() - 0.95).abs() < 1e-12);
        assert!((d.mean_entropy() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn settled_entropy_alone_is_not_recovery() {
        let o = opts();
        let mut d = NoveltyDetector::new(o.window);
        // Likelihood collapsed but the posterior concentrated on the
        // least-bad concept: no longer off-model (entropy low), yet not
        // recovered either.
        for _ in 0..4 {
            d.push(0.5, 0.1);
        }
        assert!(!d.off_model(&o));
        assert!(!d.back_on_model(&o));
        // Only a healthy likelihood clears the stream.
        for _ in 0..4 {
            d.push(0.9, 0.1);
        }
        assert!(d.back_on_model(&o));
    }

    #[test]
    fn reset_empties_the_window() {
        let o = opts();
        let mut d = NoveltyDetector::new(o.window);
        for _ in 0..4 {
            d.push(0.1, 0.9);
        }
        d.reset();
        assert!(!d.full());
        assert!(!d.off_model(&o));
        assert_eq!(d.mean_likelihood(), 1.0);
        assert_eq!(d.mean_entropy(), 0.0);
    }
}
