//! The serving-side wiring: one monitored stream drives live model
//! maintenance for a whole [`ServeEngine`].

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use hom_core::HighOrderModel;
use hom_data::ClassId;
use hom_obs::{FlightRecorder, Obs};
use hom_serve::{ConfigError, ServeEngine, ServeOptions, SwapReport};

use crate::predictor::{AdaptEvent, AdaptivePredictor, Mode};
use crate::{AdaptConfigError, AdaptOptions};

/// A rejected [`AdaptiveEngine`] configuration: either side's typed
/// error, never a silent clamp.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineConfigError {
    /// The serving options were invalid (see [`ConfigError`]).
    Serve(ConfigError),
    /// The adaptation options were invalid (see [`AdaptConfigError`]).
    Adapt(AdaptConfigError),
}

impl fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineConfigError::Serve(e) => write!(f, "serve configuration: {e}"),
            EngineConfigError::Adapt(e) => write!(f, "adapt configuration: {e}"),
        }
    }
}

impl std::error::Error for EngineConfigError {}

impl From<ConfigError> for EngineConfigError {
    fn from(e: ConfigError) -> Self {
        EngineConfigError::Serve(e)
    }
}

impl From<AdaptConfigError> for EngineConfigError {
    fn from(e: AdaptConfigError) -> Self {
        EngineConfigError::Adapt(e)
    }
}

/// A [`ServeEngine`] plus the maintenance loop: labeled records from one
/// designated **monitor stream** (the stream with ground-truth labels —
/// in a deployment, the audited or delayed-label feed) flow through an
/// [`AdaptivePredictor`]; when it admits a segment, the extended model is
/// hot-swapped into the serving engine for **every** stream via
/// [`ServeEngine::swap_model`], migrating all live and parked filter
/// states.
///
/// ```text
///   monitor labels ──▶ AdaptivePredictor ──(Admitted)──▶ swap_model
///                                                            │
///   all other streams ──▶ ServeEngine  ◀─────────────────────┘
///                         (requests keep flowing; the swap drains
///                          in-flight batches, then migrates states)
/// ```
///
/// The unlabeled request path is untouched: [`Self::serve`] exposes the
/// inner engine for `submit`/`predict`/`park`/… exactly as without
/// adaptation. Only the monitor stream's labeled records go through
/// [`Self::step_monitor`].
pub struct AdaptiveEngine {
    serve: ServeEngine,
    monitor: Mutex<AdaptivePredictor>,
    obs: Obs,
    incident: Mutex<Option<IncidentDump>>,
    incident_seq: AtomicU64,
    /// Cluster seam: called after every successful local hot-swap with
    /// the admitted model and the local [`SwapReport`], so a router can
    /// distribute the same model to every other worker
    /// ([`Self::set_swap_propagator`]).
    propagator: Mutex<Option<SwapPropagator>>,
    /// Last `(likelihood_sum, absorbed)` read from the serving engine's
    /// cumulative fleet evidence — [`Self::ingest_fleet_evidence`]
    /// differences against it so each ingest sees only new records.
    fleet_watermark: Mutex<(f64, u64)>,
}

/// The cluster swap-propagation hook: invoked with the admitted model
/// and the **local** swap's report right after
/// [`AdaptiveEngine::step_monitor`] hot-swaps it into its own serving
/// engine. `hom-cluster-serve` installs one that wire-encodes the model
/// (`hom-core`'s `model_codec`) and runs the two-phase cluster swap so
/// every worker flips to the same epoch. The hook runs under the
/// monitor lock — a second admission cannot overtake a propagation in
/// flight — and must not call back into `step_monitor`.
pub type SwapPropagator = Box<dyn Fn(&Arc<HighOrderModel>, &SwapReport) + Send + Sync>;

/// Where novelty-trigger incident reports go: which
/// [`FlightRecorder`]'s ring to dump and the directory to write into.
///
/// Wire the recorder into the engine's sinks (a
/// [`hom_obs::Fanout`] child, or `hom-serve`'s `ServeTelemetry`
/// bundle) so it retains the events *leading up to* a trigger; when the
/// [`crate::NoveltyDetector`] fires, [`AdaptiveEngine::step_monitor`]
/// dumps the ring as JSONL — every drift trigger ships its own incident
/// report, containing the trigger window's `adapt.evidence` samples and
/// the serving traffic around them.
#[derive(Debug, Clone)]
pub struct IncidentDump {
    flight: Arc<FlightRecorder>,
    dir: PathBuf,
}

impl IncidentDump {
    /// Dump `flight`'s ring into `dir` (created if missing) on every
    /// novelty trigger.
    pub fn new(flight: Arc<FlightRecorder>, dir: impl Into<PathBuf>) -> Self {
        IncidentDump {
            flight,
            dir: dir.into(),
        }
    }

    /// The file the `seq`-th trigger (0-based) dumps to:
    /// `<dir>/trigger-<seq>.jsonl`. Deterministic — no clocks in names —
    /// so tests and operators can predict where an incident landed.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("trigger-{seq:04}.jsonl"))
    }
}

impl AdaptiveEngine {
    /// An adaptive engine over `model`, validating both option sets.
    pub fn try_new(
        model: Arc<HighOrderModel>,
        serve: &ServeOptions,
        adapt: AdaptOptions,
    ) -> Result<Self, EngineConfigError> {
        let obs = adapt.sink.clone();
        let monitor = AdaptivePredictor::new(Arc::clone(&model), adapt)?;
        let serve = ServeEngine::try_with_options(model, serve)?;
        Ok(AdaptiveEngine {
            serve,
            monitor: Mutex::new(monitor),
            obs,
            incident: Mutex::new(None),
            incident_seq: AtomicU64::new(0),
            propagator: Mutex::new(None),
            fleet_watermark: Mutex::new((0.0, 0)),
        })
    }

    /// Arm the cluster swap-propagation hook: from now on, every model
    /// admission — after its successful local hot-swap — invokes `hook`
    /// with the admitted model and the local [`SwapReport`]. Returns the
    /// previous hook, if any. See [`SwapPropagator`] for the contract.
    pub fn set_swap_propagator(&self, hook: SwapPropagator) -> Option<SwapPropagator> {
        self.lock_propagator().replace(hook)
    }

    /// Disarm the cluster swap-propagation hook.
    pub fn clear_swap_propagator(&self) -> Option<SwapPropagator> {
        self.lock_propagator().take()
    }

    fn lock_propagator(&self) -> MutexGuard<'_, Option<SwapPropagator>> {
        // Same poisoning policy as the other config locks.
        self.propagator.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm the trigger-dump hook: from now on, every novelty trigger on
    /// the monitor stream writes `dump`'s flight-recorder ring to
    /// `dump.path_for(seq)` (seq counts triggers from 0). Returns the
    /// previous hook, if any was armed.
    pub fn set_incident_dump(&self, dump: IncidentDump) -> Option<IncidentDump> {
        self.lock_incident().replace(dump)
    }

    /// Disarm the trigger-dump hook.
    pub fn clear_incident_dump(&self) -> Option<IncidentDump> {
        self.lock_incident().take()
    }

    /// Number of incident reports written so far.
    pub fn incident_dumps(&self) -> u64 {
        self.incident_seq.load(Ordering::Acquire)
    }

    /// Write one incident report (see [`Self::set_incident_dump`]).
    /// Failures are counted (`adapt.flight_dump_failures`), never
    /// panicked on: incident reporting must not take the monitor down.
    fn dump_incident(&self) {
        let guard = self.lock_incident();
        let Some(dump) = guard.as_ref() else { return };
        let seq = self.incident_seq.fetch_add(1, Ordering::AcqRel);
        let path = dump.path_for(seq);
        let ok =
            std::fs::create_dir_all(&dump.dir).is_ok() && dump.flight.write_jsonl(&path).is_ok();
        if self.obs.enabled() {
            if ok {
                self.obs.count("adapt.flight_dumps", 1);
            } else {
                self.obs.count("adapt.flight_dump_failures", 1);
            }
            // Link the incident to the distributed trace of the traffic
            // that fed it: the last trace id the serving engine saw. A
            // count (u64-exact `n`) — a gauge's f64 would corrupt trace
            // ids above 2^53.
            let trace = self.serve.last_trace_id();
            if trace != 0 {
                self.obs.count("adapt.trigger_trace", trace);
            }
        }
    }

    fn lock_incident(&self) -> MutexGuard<'_, Option<IncidentDump>> {
        // Same poisoning policy as the monitor lock below: the dump
        // config is plain data, continuing is safe.
        self.incident.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// [`Self::try_new`] with default serving options.
    ///
    /// # Panics
    /// Panics with the typed error's message if either option set is
    /// invalid; use [`Self::try_new`] to handle it.
    pub fn new(model: Arc<HighOrderModel>, adapt: AdaptOptions) -> Self {
        match Self::try_new(model, &ServeOptions::default(), adapt) {
            Ok(engine) => engine,
            Err(e) => panic!("invalid adaptive engine configuration: {e}"),
        }
    }

    /// The inner serving engine — the full request path
    /// (`submit`/`predict`/`snapshot`/`park`/…) for all streams.
    pub fn serve(&self) -> &ServeEngine {
        &self.serve
    }

    /// The model currently being served (grows across admissions).
    pub fn model(&self) -> Arc<HighOrderModel> {
        self.serve.model()
    }

    /// The monitor predictor's lifecycle mode right now.
    pub fn mode(&self) -> Mode {
        self.lock_monitor().mode()
    }

    /// One labeled record from the monitor stream: predict (filter
    /// on-model, fallback learner off-model), absorb, and — when a
    /// segment is admitted — hot-swap the extended model into the
    /// serving engine for every stream. Returns the prediction and the
    /// lifecycle transition, if this record caused one.
    pub fn step_monitor(&self, x: &[f64], y: ClassId) -> (ClassId, Option<AdaptEvent>) {
        let mut monitor = self.lock_monitor();
        let (pred, event) = monitor.step(x, y);
        if matches!(event, Some(AdaptEvent::Triggered)) {
            // Ship the incident report while the flight ring still holds
            // the window that caused the trigger.
            self.dump_incident();
        }
        if let Some(AdaptEvent::Admitted { model, .. }) = &event {
            // The swap cannot fail by construction: the admitted model is
            // the served model grown by one concept (or its stats
            // updated) over the same schema. Hold the monitor lock across
            // it so a second monitor record cannot race the swap.
            match self.serve.swap_model(Arc::clone(model)) {
                Ok(report) => {
                    if self.obs.enabled() {
                        self.obs.count("adapt.swaps", 1);
                        self.obs.gauge("adapt.swap_epoch", f64::from(report.epoch));
                    }
                    // Cluster seam: fan the admitted model out to the
                    // rest of the fleet. Still under the monitor lock,
                    // so admissions propagate in order.
                    if let Some(hook) = self.lock_propagator().as_ref() {
                        hook(model, &report);
                    }
                }
                Err(e) => {
                    // Unreachable unless the serving model was swapped
                    // behind our back; surface it, never panic the
                    // request path.
                    if self.obs.enabled() {
                        self.obs.count("adapt.swap_failures", 1);
                    }
                    debug_assert!(false, "admission swap rejected: {e}");
                }
            }
        }
        (pred, event)
    }

    /// Classify an unlabeled record with the monitor predictor (fallback
    /// learner while off-model, filter otherwise).
    pub fn predict_monitor(&self, x: &[f64]) -> ClassId {
        self.lock_monitor().predict(x)
    }

    /// Pool the serving fleet's evidence into the maintenance loop: read
    /// the engine's cumulative `(Σ Eq. 7 likelihood, records absorbed)`
    /// ([`ServeEngine::fleet_evidence`]), difference it against the last
    /// ingest's watermark, and push the interval's mean likelihood (plus
    /// the fleet's point-in-time mean posterior entropy) through the
    /// monitor's novelty detector via
    /// [`AdaptivePredictor::push_evidence`].
    ///
    /// Call it on whatever cadence fits the deployment (per batch, per
    /// scrape — it is cheap: two lock grabs and one shard fold). A
    /// no-op returning `None` when no labeled record was absorbed since
    /// the last ingest, and when the serving engine is unobserved (an
    /// unobserved engine accumulates no fleet evidence). Each ingest
    /// emits one `adapt.fleet_evidence` series sample indexed by the
    /// cumulative absorbed count; a trigger dumps the armed incident
    /// report exactly like a monitor-stream trigger.
    pub fn ingest_fleet_evidence(&self) -> Option<AdaptEvent> {
        let (lik_sum, absorbed) = self.serve.fleet_evidence();
        let mean_likelihood = {
            let mut watermark = self.lock_watermark();
            let (prev_sum, prev_absorbed) = *watermark;
            if absorbed <= prev_absorbed {
                return None;
            }
            let mean = (lik_sum - prev_sum) / (absorbed - prev_absorbed) as f64;
            *watermark = (lik_sum, absorbed);
            mean
        };
        let mean_entropy = self.serve.concept_analytics().mean_entropy;
        if self.obs.enabled() {
            self.obs.series(
                "adapt.fleet_evidence",
                absorbed,
                &[mean_likelihood, mean_entropy],
            );
        }
        let event = self
            .lock_monitor()
            .push_evidence(mean_likelihood, mean_entropy);
        if matches!(event, Some(AdaptEvent::Triggered)) {
            // Same urgency as a monitor-stream trigger: ship the report
            // while the flight ring still holds the collapsing window.
            self.dump_incident();
        }
        event
    }

    fn lock_watermark(&self) -> MutexGuard<'_, (f64, u64)> {
        // Plain data; same poisoning policy as the other locks here.
        self.fleet_watermark
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn lock_monitor(&self) -> MutexGuard<'_, AdaptivePredictor> {
        // Poisoning means a classifier panicked mid-step on another
        // thread; the predictor's data structures are all plain values,
        // so continuing is safe (same policy as the serve shards).
        self.monitor.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::MajorityClassifier;
    use hom_core::{Concept, TransitionStats};
    use hom_data::{Attribute, Schema};
    use hom_serve::Request;

    fn toy_model() -> Arc<HighOrderModel> {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 0])),
                err: 0.05,
                n_records: 100,
                n_occurrences: 1,
            },
            Concept {
                id: 1,
                model: Arc::new(MajorityClassifier::from_counts(&[0, 10])),
                err: 0.05,
                n_records: 100,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 100), (1, 100)]);
        Arc::new(HighOrderModel::from_parts(schema, concepts, stats))
    }

    fn opts() -> AdaptOptions {
        AdaptOptions {
            window: 20,
            min_segment: 60,
            max_segment: 200,
            ..Default::default()
        }
    }

    #[test]
    fn invalid_options_surface_as_typed_errors() {
        let err = AdaptiveEngine::try_new(
            toy_model(),
            &ServeOptions {
                shards: Some(3),
                ..Default::default()
            },
            opts(),
        )
        .err()
        .expect("3 shards must be rejected");
        assert!(matches!(err, EngineConfigError::Serve(_)), "{err}");

        let err = AdaptiveEngine::try_new(
            toy_model(),
            &ServeOptions::default(),
            AdaptOptions {
                window: 0,
                ..opts()
            },
        )
        .err()
        .expect("zero window must be rejected");
        assert_eq!(
            err,
            EngineConfigError::Adapt(AdaptConfigError::ZeroCount("window"))
        );
    }

    /// An admission on the monitor stream swaps the model for *other*
    /// streams too: their states migrate and the epoch bumps.
    #[test]
    fn admission_swaps_the_serving_model_for_all_streams() {
        let engine = AdaptiveEngine::new(toy_model(), opts());
        // A bystander stream living in the serve engine.
        for _ in 0..20 {
            engine.serve().step(7, &[0.0], 1);
        }
        assert_eq!(engine.serve().epoch(), 0);
        let before = engine.serve().posterior(7).expect("stream 7 lives");
        assert_eq!(before.len(), 2);

        // Monitor settles, then enters a regime no concept explains.
        for _ in 0..50 {
            engine.step_monitor(&[0.0], 1);
        }
        let mut admitted = false;
        for t in 0..400u32 {
            let (_, event) = engine.step_monitor(&[f64::from(t % 2)], t % 2);
            if let Some(AdaptEvent::Admitted { novel, .. }) = event {
                assert!(novel);
                admitted = true;
                break;
            }
        }
        assert!(admitted, "monitor must admit the novel regime");
        assert_eq!(engine.model().n_concepts(), 3);
        assert_eq!(engine.serve().epoch(), 1);
        // The bystander's posterior was migrated to the grown space.
        let after = engine.serve().posterior(7).expect("stream 7 survived");
        assert_eq!(after.len(), 3);
        let sum: f64 = after.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // And the engine keeps serving it — on the new model — without
        // panicking.
        let r = engine.serve().submit(&[Request::Step {
            stream: 7,
            x: vec![0.0],
            y: 1,
        }]);
        assert!(r[0].prediction.is_some());
    }

    /// The cluster seam: an armed swap propagator sees every admission
    /// exactly once, with the admitted model and the local report —
    /// and the shipped model wire-encodes/decodes to one that is
    /// swap-compatible, which is what the router's two-phase cluster
    /// swap relies on.
    #[test]
    fn swap_propagator_sees_each_admission() {
        let engine = AdaptiveEngine::new(toy_model(), opts());
        type Admissions = Vec<(usize, u32, Vec<u8>)>;
        let seen: Arc<Mutex<Admissions>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        assert!(
            engine
                .set_swap_propagator(Box::new(move |model, report| {
                    let bytes = hom_core::encode_model(model, report.epoch)
                        .expect("admitted models always wire-encode");
                    sink.lock()
                        .unwrap()
                        .push((model.n_concepts(), report.epoch, bytes));
                }))
                .is_none(),
            "no hook was armed before"
        );

        for _ in 0..50 {
            engine.step_monitor(&[0.0], 1);
        }
        let mut admitted = false;
        for t in 0..400u32 {
            let (_, event) = engine.step_monitor(&[f64::from(t % 2)], t % 2);
            if matches!(event, Some(AdaptEvent::Admitted { .. })) {
                admitted = true;
                break;
            }
        }
        assert!(admitted, "monitor must admit the novel regime");

        let calls = seen.lock().unwrap();
        assert_eq!(calls.len(), 1, "one admission, one propagation");
        let (n_concepts, epoch, ref bytes) = calls[0];
        assert_eq!(n_concepts, 3);
        assert_eq!(epoch, 1);
        // The wire round-trip of the propagated model is cluster-usable:
        // same shape, and a fresh engine accepts it as a swap.
        let (decoded, wire_epoch) = hom_core::decode_model(bytes).expect("decodes");
        assert_eq!(wire_epoch, 1);
        assert_eq!(decoded.n_concepts(), 3);
        let worker = ServeEngine::new(toy_model());
        worker.step(3, &[0.0], 1);
        let report = worker.swap_model(decoded).expect("decoded model swaps in");
        assert_eq!(report.epoch, 1);
        drop(calls);

        // Disarming returns the hook and stops further propagation.
        assert!(engine.clear_swap_propagator().is_some());
    }

    /// Fleet-wide evidence alone — no labeled record ever reaching the
    /// monitor stream — fires the novelty detector through
    /// [`AdaptiveEngine::ingest_fleet_evidence`].
    #[test]
    fn fleet_evidence_reaches_the_maintenance_loop() {
        let recorder = Arc::new(hom_obs::Recorder::new());
        let engine = AdaptiveEngine::try_new(
            toy_model(),
            &ServeOptions {
                shards: Some(4),
                threads: Some(1),
                sink: Obs::new(Arc::clone(&recorder)),
                ..Default::default()
            },
            AdaptOptions {
                sink: Obs::new(Arc::clone(&recorder)),
                ..opts()
            },
        )
        .expect("valid configuration");

        // Nothing absorbed yet: nothing to ingest.
        assert!(engine.ingest_fleet_evidence().is_none());

        // Four fleet streams flip labels every round — a regime neither
        // constant concept explains — while the monitor sees no records.
        let mut triggered = false;
        for round in 0..60u32 {
            let y = round % 2;
            let batch: Vec<Request> = (0..4u64)
                .map(|stream| Request::Step {
                    stream,
                    x: vec![f64::from(y)],
                    y,
                })
                .collect();
            engine.serve().submit(&batch);
            if let Some(AdaptEvent::Triggered) = engine.ingest_fleet_evidence() {
                triggered = true;
                break;
            }
        }
        assert!(triggered, "pooled fleet evidence must fire the detector");
        assert_eq!(engine.mode(), Mode::Fallback);
        assert!(
            !recorder.series("adapt.fleet_evidence").is_empty(),
            "every ingest emits one fleet-evidence sample"
        );
        // No new absorbed records since the trigger: a no-op.
        assert!(engine.ingest_fleet_evidence().is_none());
    }

    /// An armed incident dump writes the flight ring — including the
    /// trigger window's `adapt.evidence` samples — to a predictable
    /// JSONL file the moment the detector fires.
    #[test]
    fn novelty_trigger_dumps_the_flight_recorder() {
        let flight = Arc::new(hom_obs::FlightRecorder::default());
        let obs = Obs::new(Arc::clone(&flight));
        let engine = AdaptiveEngine::try_new(
            toy_model(),
            &ServeOptions {
                sink: obs,
                ..Default::default()
            },
            AdaptOptions {
                sink: Obs::new(Arc::clone(&flight)),
                ..opts()
            },
        )
        .expect("valid configuration");
        let dir = std::env::temp_dir().join(format!("hom-incident-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dump = IncidentDump::new(Arc::clone(&flight), &dir);
        let path = dump.path_for(0);
        engine.set_incident_dump(dump);

        // Settle on-model, then an unexplained regime until the trigger.
        for _ in 0..50 {
            engine.step_monitor(&[0.0], 1);
        }
        let mut triggered = false;
        for t in 0..400u32 {
            let (_, event) = engine.step_monitor(&[f64::from(t % 2)], t % 2);
            if matches!(event, Some(AdaptEvent::Triggered)) {
                triggered = true;
                break;
            }
        }
        assert!(triggered, "the alternating regime must trigger");
        assert_eq!(engine.incident_dumps(), 1);
        let dumped = std::fs::read_to_string(&path).expect("incident report written");
        assert!(
            dumped.lines().any(|l| l.contains("adapt.evidence")),
            "incident report holds the trigger window's evidence"
        );
        for line in dumped.lines() {
            hom_obs::jsonl::parse_line(line).expect("every incident line parses");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
