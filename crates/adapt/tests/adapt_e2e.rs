//! End-to-end acceptance: a model mined on classic Stagger history meets
//! a stream that enters the **held-out** fourth concept
//! (`hom_datagen::stagger::NOVEL_CONCEPT`, "positive iff color = blue"),
//! which the historical stream provably never produced. The detector
//! must fire within a bounded number of labeled records, the fallback
//! learner must serve (no worse than a standalone Hoeffding tree on the
//! same span), the segment must be admitted as a novel concept with a
//! valid re-normalized transition kernel, and the whole lifecycle must
//! be bit-identical at every thread count.

use std::sync::Arc;

use hom_adapt::{AdaptEvent, AdaptOptions, AdaptiveEngine, AdaptivePredictor, Mode};
use hom_classifiers::{Classifier, DecisionTreeLearner, HoeffdingParams, HoeffdingTree};
use hom_core::{build, BuildParams, HighOrderModel};
use hom_data::stream::collect;
use hom_data::{StreamRecord, StreamSource};
use hom_datagen::stagger::{stagger_label, NOVEL_CONCEPT};
use hom_datagen::{StaggerParams, StaggerSource};
use hom_serve::{Request, ServeOptions};

fn bits(p: &[f64]) -> Vec<u64> {
    p.iter().map(|v| v.to_bits()).collect()
}

/// Mine a model on classic Stagger history (concepts A/B/C only), and
/// return test traffic: 300 on-model records followed by 900 records
/// relabeled by the held-out novel concept.
fn fixture() -> (Arc<HighOrderModel>, Vec<StreamRecord>, Vec<StreamRecord>) {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 3000);
    let (model, _) = build(
        &data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: hom_cluster::ClusterParams {
                block_size: 10,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let on_model: Vec<StreamRecord> = (0..300).map(|_| src.next_record()).collect();
    let novel: Vec<StreamRecord> = (0..900)
        .map(|_| {
            let mut r = src.next_record();
            r.y = stagger_label(NOVEL_CONCEPT, r.x[0], r.x[1], r.x[2]);
            r.concept = NOVEL_CONCEPT;
            r
        })
        .collect();
    (Arc::new(model), on_model, novel)
}

fn opts() -> AdaptOptions {
    AdaptOptions {
        window: 40,
        // Long enough for the Hoeffding fallback to converge on the
        // novel rule: "blue" sits between the green/red codes, so the
        // tree needs two threshold splits (~110 records each at δ=1e-6)
        // before its segment classifier is worth admitting.
        min_segment: 300,
        max_segment: 700,
        ..Default::default()
    }
}

/// The full lifecycle on mined Stagger: detect within a bounded number
/// of labeled records, degrade no worse than a standalone Hoeffding
/// tree, admit a novel concept with a valid re-normalized kernel, and
/// predict the new regime accurately afterwards.
#[test]
fn novel_concept_lifecycle_on_stagger() {
    let (model, on_model, novel) = fixture();
    let n_mined = model.n_concepts();
    let mut p = AdaptivePredictor::new(Arc::clone(&model), opts()).unwrap();

    // Phase 1: on-model traffic. Brief excursions (concept switches) may
    // trigger and recover, but nothing here is novel — a *novel*
    // admission of historical concepts would be a false positive.
    for r in &on_model {
        if let (_, Some(AdaptEvent::Admitted { novel, .. })) = p.step(&r.x, r.y) {
            assert!(!novel, "on-model traffic admitted as a novel concept");
        }
    }

    // Phase 2: the stream enters the held-out concept.
    let mut triggered_at = None;
    let mut admitted = None;
    let mut fallback_errors = 0usize;
    let mut fallback_records = Vec::new();
    let mut records_to_admission = 0usize;
    for (t, r) in novel.iter().enumerate() {
        let was_fallback = p.mode() == Mode::Fallback;
        let (pred, event) = p.step(&r.x, r.y);
        if was_fallback {
            fallback_errors += usize::from(pred != r.y);
            fallback_records.push(t);
        }
        records_to_admission = t + 1;
        match event {
            Some(AdaptEvent::Triggered) if triggered_at.is_none() => triggered_at = Some(t),
            Some(AdaptEvent::Admitted {
                model,
                concept,
                novel,
                latency,
                best_similarity,
            }) => {
                assert!(
                    novel,
                    "held-out concept must be admitted as novel \
                     (best Eq. 4 similarity {best_similarity})"
                );
                assert!(best_similarity < 0.9);
                assert_eq!(concept, n_mined);
                assert_eq!(model.n_concepts(), n_mined + 1);
                assert!(latency <= opts().max_segment);
                admitted = Some(model);
                break;
            }
            _ => {}
        }
    }

    // Detection latency is bounded: within a few evidence windows.
    let triggered_at = triggered_at.expect("detector must fire on the held-out concept");
    assert!(
        triggered_at < 4 * opts().window,
        "detection latency {triggered_at} records (window {})",
        opts().window
    );

    // Degradation bound: on the off-model segment, the served
    // predictions are never worse than a standalone Hoeffding tree with
    // the same parameters trained prequentially on that same segment —
    // the VFDT baseline the paper's introduction measures against.
    let mut standalone = HoeffdingTree::new(
        Arc::clone(model.schema()),
        HoeffdingParams {
            grace_period: opts().window,
            ..HoeffdingParams::default()
        },
    );
    let mut standalone_errors = 0usize;
    for &t in &fallback_records {
        let r = &novel[t];
        standalone_errors += usize::from(standalone.predict(&r.x) != r.y);
        standalone.update(&r.x, r.y);
    }
    assert!(
        fallback_errors <= standalone_errors,
        "fallback made {fallback_errors} errors, the standalone VFDT baseline \
         {standalone_errors}, over {} off-model records",
        fallback_records.len()
    );

    // The admitted model's kernel is a valid re-normalized χ (Eq. 6).
    let grown = admitted.expect("segment must be admitted");
    for i in 0..grown.n_concepts() {
        let sum: f64 = (0..grown.n_concepts())
            .map(|j| grown.stats().chi(i, j))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9, "χ row {i} sums to {sum}");
        for j in 0..grown.n_concepts() {
            if i != j {
                assert!(grown.stats().chi(i, j) > 0.0, "χ({i},{j}) = 0");
            }
        }
    }

    // Repair pays off: back on-model, the grown model explains the novel
    // regime accurately.
    assert_eq!(p.mode(), Mode::OnModel);
    let rest = &novel[records_to_admission..];
    assert!(rest.len() >= 300, "need post-admission traffic to score");
    let correct = rest
        .iter()
        .filter(|r| {
            let (pred, _) = p.step(&r.x, r.y);
            pred == r.y
        })
        .count();
    let accuracy = correct as f64 / rest.len() as f64;
    assert!(
        accuracy >= 0.9,
        "post-admission accuracy {accuracy:.3} over {} records",
        rest.len()
    );
}

/// The serving-side contract: the same traffic through [`AdaptiveEngine`]s
/// configured with 1 and 8 worker threads produces bit-identical
/// posteriors, the same admission, and the same epoch — the swap is pure
/// execution policy, like everything else in the serving layer.
#[test]
fn admission_is_thread_count_invariant() {
    let (model, on_model, novel) = fixture();
    let engines: Vec<AdaptiveEngine> = [1usize, 8]
        .iter()
        .map(|&threads| {
            AdaptiveEngine::try_new(
                Arc::clone(&model),
                &ServeOptions {
                    shards: Some(8),
                    threads: Some(threads),
                    ..Default::default()
                },
                opts(),
            )
            .expect("valid configuration")
        })
        .collect();

    let traffic = |engine: &AdaptiveEngine| {
        let mut monitor_preds = Vec::new();
        for r in on_model.iter().chain(&novel) {
            // bystander streams ride the ordinary batch path
            let batch: Vec<Request> = (0..6u64)
                .map(|stream| Request::Step {
                    stream,
                    x: r.x.to_vec(),
                    y: r.y,
                })
                .collect();
            engine.serve().submit(&batch);
            // the monitor stream drives adaptation
            monitor_preds.push(engine.step_monitor(&r.x, r.y).0);
        }
        monitor_preds
    };

    let preds: Vec<Vec<u32>> = engines.iter().map(traffic).collect();
    assert_eq!(preds[0], preds[1], "monitor predictions diverged");
    assert_eq!(engines[0].serve().epoch(), engines[1].serve().epoch());
    assert!(
        engines[0].serve().epoch() >= 1,
        "the novel regime must cause at least one hot-swap"
    );
    assert_eq!(
        engines[0].model().n_concepts(),
        engines[1].model().n_concepts()
    );
    assert_eq!(engines[0].model().n_concepts(), model.n_concepts() + 1);
    for stream in 0..6u64 {
        let a = engines[0].serve().posterior(stream).expect("stream exists");
        let b = engines[1].serve().posterior(stream).expect("stream exists");
        assert_eq!(bits(&a), bits(&b), "stream {stream} posterior diverged");
    }
}
