//! Incremental extension of a mined [`HighOrderModel`].
//!
//! The paper mines the model once and assumes the concept set is
//! complete; §III's filter then silently degrades when the stream enters
//! a concept the historical data never contained. The maintenance layer
//! (`hom-adapt`) closes that gap, and this module supplies the model
//! side of it: *pure* extension operations that take an existing model
//! and produce a **new immutable model** — the original is never touched,
//! so serving layers can keep predicting on the old `Arc` until the new
//! one is hot-swapped in.
//!
//! Two operations cover both outcomes of clustering a freshly observed
//! segment against the mined concepts (the Eq. 3–4 model-similarity
//! match performed by `hom-adapt`):
//!
//! * [`HighOrderModel::record_occurrence`] — the segment *matched* a
//!   known concept: the concept set is unchanged, but the concept's
//!   `Len_i`/`Freq_i` totals gain one occurrence and the transition
//!   kernel χ (Eq. 6) is re-derived from the updated totals.
//! * [`HighOrderModel::admit_concept`] — the segment is a *novel*
//!   concept: it is appended (with the classifier trained on the
//!   segment) and χ re-normalized over the grown concept space. Every
//!   existing concept id keeps its position, which is what makes
//!   per-stream [`crate::FilterState`] migration well-defined (see
//!   [`crate::FilterState::migrate`]).
//!
//! Both re-derivations use [`TransitionStats::from_totals`]: `Len` and
//! `Freq` only depend on per-concept occurrence/record totals, which the
//! model retains in each [`Concept`], so no occurrence sequence needs to
//! be stored.

use std::sync::Arc;

use hom_classifiers::Classifier;

use crate::build::{HighOrderModel, ERR_CLAMP};
use crate::concept::Concept;
use crate::transition::TransitionStats;

impl HighOrderModel {
    /// Re-derive [`TransitionStats`] from the concepts' occurrence and
    /// record totals.
    fn stats_from_concepts(concepts: &[Concept]) -> TransitionStats {
        let count: Vec<usize> = concepts.iter().map(|c| c.n_occurrences).collect();
        let records: Vec<usize> = concepts.iter().map(|c| c.n_records).collect();
        TransitionStats::from_totals(&count, &records)
    }

    /// A new model equal to `self` plus one **novel concept** appended at
    /// id [`Self::n_concepts`]: its classifier is `model` (typically the
    /// incremental fallback learner trained on the buffered segment), its
    /// error estimate `err` (clamped like the offline build's, so ψ can
    /// never annihilate a concept on one record), and one occurrence
    /// spanning `n_records` records. The transition kernel χ is
    /// re-normalized over the grown concept space from the updated
    /// totals (Eq. 6); existing concepts keep their ids, classifiers and
    /// error estimates, so old [`crate::FilterState`]s migrate by
    /// extension ([`crate::FilterState::migrate`]).
    ///
    /// # Panics
    /// Panics if `n_records` is zero or the classifier's class count
    /// disagrees with the schema.
    pub fn admit_concept(
        &self,
        model: Arc<dyn Classifier>,
        err: f64,
        n_records: usize,
    ) -> HighOrderModel {
        assert!(n_records > 0, "an occurrence spans at least one record");
        assert_eq!(
            model.n_classes(),
            self.schema.n_classes(),
            "admitted classifier must match the schema's class count"
        );
        let mut concepts = self.concepts.clone();
        concepts.push(Concept {
            id: concepts.len(),
            model,
            err: err.clamp(ERR_CLAMP.0, ERR_CLAMP.1),
            n_records,
            n_occurrences: 1,
        });
        let stats = Self::stats_from_concepts(&concepts);
        HighOrderModel {
            schema: Arc::clone(&self.schema),
            concepts,
            stats,
        }
    }

    /// A new model equal to `self` with one more historical **occurrence**
    /// of the known concept `concept`, spanning `n_records` records: the
    /// concept set is unchanged, but `Len_i`, `Freq_i` and the kernel χ
    /// are re-derived from the updated totals. This is the "segment
    /// matched a mined concept" outcome of incremental admission.
    ///
    /// # Panics
    /// Panics if `concept` is out of range or `n_records` is zero.
    pub fn record_occurrence(&self, concept: usize, n_records: usize) -> HighOrderModel {
        assert!(n_records > 0, "an occurrence spans at least one record");
        assert!(
            concept < self.concepts.len(),
            "occurrence of unknown concept {concept}"
        );
        let mut concepts = self.concepts.clone();
        concepts[concept].n_occurrences += 1;
        concepts[concept].n_records += n_records;
        let stats = Self::stats_from_concepts(&concepts);
        HighOrderModel {
            schema: Arc::clone(&self.schema),
            concepts,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::MajorityClassifier;
    use hom_data::{Attribute, Schema};

    fn model() -> HighOrderModel {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 0])),
                err: 0.1,
                n_records: 200,
                n_occurrences: 2,
            },
            Concept {
                id: 1,
                model: Arc::new(MajorityClassifier::from_counts(&[0, 10])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_totals(&[2, 1], &[200, 100]);
        HighOrderModel::from_parts(schema, concepts, stats)
    }

    #[test]
    fn admit_appends_and_renormalizes() {
        let old = model();
        let new = old.admit_concept(Arc::new(MajorityClassifier::from_counts(&[5, 5])), 0.2, 150);
        // the original is untouched
        assert_eq!(old.n_concepts(), 2);
        assert_eq!(new.n_concepts(), 3);
        assert_eq!(new.concepts()[2].id, 2);
        assert_eq!(new.concepts()[2].n_occurrences, 1);
        assert_eq!(new.concepts()[2].n_records, 150);
        // existing concepts keep their position and data
        for i in 0..2 {
            assert_eq!(new.concepts()[i].id, old.concepts()[i].id);
            assert_eq!(new.concepts()[i].n_records, old.concepts()[i].n_records);
        }
        // χ is a valid re-normalized kernel over the grown space
        assert_eq!(new.stats().n_concepts(), 3);
        assert_eq!(new.stats().freq(2), 0.25); // 1 of 4 occurrences
        assert_eq!(new.stats().len(2), 150.0);
        for i in 0..3 {
            let sum: f64 = (0..3).map(|j| new.stats().chi(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
            for j in 0..3 {
                if i != j {
                    assert!(new.stats().chi(i, j) > 0.0, "χ({i},{j}) = 0");
                }
            }
        }
    }

    #[test]
    fn admit_clamps_error() {
        let new =
            model().admit_concept(Arc::new(MajorityClassifier::from_counts(&[5, 5])), 0.0, 10);
        assert_eq!(new.concepts()[2].err, ERR_CLAMP.0);
        let new =
            model().admit_concept(Arc::new(MajorityClassifier::from_counts(&[5, 5])), 1.0, 10);
        assert_eq!(new.concepts()[2].err, ERR_CLAMP.1);
    }

    #[test]
    fn record_occurrence_updates_totals_only() {
        let old = model();
        let new = old.record_occurrence(1, 300);
        assert_eq!(new.n_concepts(), 2);
        assert_eq!(new.concepts()[1].n_occurrences, 2);
        assert_eq!(new.concepts()[1].n_records, 400);
        // Len_1 = 400/2, Freq_1 = 2/4
        assert_eq!(new.stats().len(1), 200.0);
        assert_eq!(new.stats().freq(1), 0.5);
        // the untouched concept's totals survive
        assert_eq!(new.concepts()[0].n_records, 200);
        assert_eq!(new.stats().len(0), 100.0);
        // the original model still has the old kernel
        assert_eq!(old.stats().freq(1), 1.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "unknown concept")]
    fn record_occurrence_rejects_bad_id() {
        model().record_occurrence(7, 10);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn admit_rejects_empty_segment() {
        model().admit_concept(Arc::new(MajorityClassifier::from_counts(&[5, 5])), 0.2, 0);
    }
}
