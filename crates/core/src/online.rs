//! Online concept identification and prediction (paper §III).
//!
//! The predictor maintains each concept's **active probability**. Per
//! timestamp `t` the lifecycle is:
//!
//! 1. the *prior* `Pₜ⁻(c)` is obtained from the previous posterior through
//!    the transition kernel χ (Eq. 5);
//! 2. unlabeled records of timestamp `t` are classified with the
//!    prior-weighted ensemble (Eq. 10) — the paper's Eq. 10 uses `Pₜ⁻`
//!    because the label of timestamp `t` is not yet available;
//! 3. the labeled record `yₜ` arrives and the *posterior* `Pₜ(c)` is
//!    computed by Bayes' rule with the likelihood proxy `ψ` (Eqs. 7–9).
//!
//! [`OnlinePredictor::step`] performs 1–3 for the common benchmark loop
//! where every record is both predicted and then revealed.
//!
//! All of the filter math lives in [`FilterState`] (the cloneable
//! per-stream state, shared with the `hom-serve` engine); the predictor
//! owns one state, pins it to one `Arc<HighOrderModel>`, and layers the
//! observability — a prediction-latency histogram, posterior traces,
//! §III-C prune events and label-agreement counters — on top.

use std::sync::Arc;
use std::time::Instant;

use hom_classifiers::argmax;
use hom_data::ClassId;
use hom_obs::{Histogram, Obs};

use crate::build::HighOrderModel;
use crate::filter::FilterState;

/// Execution options of the online filter. Like
/// [`crate::build::BuildOptions`], options never change a prediction —
/// observability only measures.
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// Observability sink the predictor emits its per-record metrics to
    /// (posterior trace, prediction-latency histogram, prune events,
    /// label-agreement counters). The default comes from
    /// [`Obs::from_env`]: disabled unless `HOM_TRACE=path.jsonl` is set.
    pub sink: Obs,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        OnlineOptions {
            sink: Obs::from_env(),
        }
    }
}

/// One stream's online filter: a [`FilterState`] bound to its model, plus
/// batched observability.
pub struct OnlinePredictor {
    model: Arc<HighOrderModel>,
    /// The per-stream state (posterior, prior, prune order, scratch).
    state: FilterState,
    /// Observability handle; disabled by default (one branch per record).
    obs: Obs,
    /// Metrics accumulated locally while observed, emitted by
    /// [`Self::flush_trace`]. Latency of [`Self::step`] in nanoseconds.
    latency: Histogram,
    observed: u64,
    predicted: u64,
    consulted: u64,
    pruned_records: u64,
    map_agree: u64,
}

impl OnlinePredictor {
    /// Start a predictor with the uniform initial distribution
    /// `P₁(c) = 1/N` (§III-B), with default [`OnlineOptions`] (tracing
    /// via the `HOM_TRACE` hook only).
    pub fn new(model: Arc<HighOrderModel>) -> Self {
        Self::with_options(model, &OnlineOptions::default())
    }

    /// [`OnlinePredictor::new`] with explicit execution options.
    pub fn with_options(model: Arc<HighOrderModel>, options: &OnlineOptions) -> Self {
        let state = FilterState::new(&model);
        Self::from_state(model, state, options)
    }

    /// Resume a predictor from an existing state — e.g. one restored from
    /// a [`FilterState::restore`] snapshot. The continued run is
    /// bit-identical to never having stopped.
    ///
    /// # Panics
    /// Panics if `state` does not match the model's concept count.
    pub fn from_state(
        model: Arc<HighOrderModel>,
        state: FilterState,
        options: &OnlineOptions,
    ) -> Self {
        assert_eq!(
            state.n_concepts(),
            model.n_concepts(),
            "state does not match the model"
        );
        OnlinePredictor {
            model,
            state,
            obs: options.sink.clone(),
            latency: Histogram::new(),
            observed: 0,
            predicted: 0,
            consulted: 0,
            pruned_records: 0,
            map_agree: 0,
        }
    }

    /// The model this predictor runs.
    pub fn model(&self) -> &Arc<HighOrderModel> {
        &self.model
    }

    /// The per-stream filter state (read-only; the predictor's methods
    /// are the mutation surface).
    pub fn state(&self) -> &FilterState {
        &self.state
    }

    /// Give up the predictor, keeping its state — the handoff direction
    /// of [`Self::from_state`] (flushes any batched metrics first).
    pub fn into_state(mut self) -> FilterState {
        self.flush_trace();
        self.state.clone()
    }

    /// The active probabilities used for prediction at the current
    /// timestamp (`Pₜ⁻`).
    pub fn concept_probs(&self) -> &[f64] {
        self.state.prior()
    }

    /// The most likely current concept.
    pub fn current_concept(&self) -> usize {
        self.state.current_concept()
    }

    /// Advance one timestamp: posterior → prior through χ (Eq. 5).
    ///
    /// Called automatically by [`Self::observe`]; call it directly
    /// (possibly several times) when timestamps pass without labeled data
    /// — e.g. a variable-rate stream where `k` unlabeled records arrive
    /// between labels (§III-B notes the equations adapt to variable rate).
    pub fn advance(&mut self) {
        self.state.advance(&self.model);
    }

    /// Absorb the labeled record of the current timestamp: posterior ∝
    /// prior · ψ(c, yₜ), normalized (Eqs. 7–9), then advance to the next
    /// timestamp's prior.
    pub fn observe(&mut self, x: &[f64], y: ClassId) {
        self.state.absorb(&self.model, x, y);
        if self.obs.enabled() {
            self.observed += 1;
            // Did the most probable concept's model agree with the label?
            // ψ returns `1 − Err` exactly when it did (Eq. 8).
            let map = argmax(self.state.prior());
            if self.state.psi[map] == 1.0 - self.model.concepts()[map].err {
                self.map_agree += 1;
            }
            // Posterior trace P_t(c) — the paper's Fig. 6 timeline.
            self.obs
                .series("online.posterior", self.observed, self.state.posterior());
        }
        // Pre-compute the next timestamp's prior.
        self.state.roll_prior(&self.model);
    }

    /// Advance `k` timestamps at once — the variable-rate adaptation the
    /// paper mentions in §III-B ("if records are generated in variable
    /// rate, the equations can be easily revised"): when `k` unlabeled
    /// records passed between two labeled ones, the prior must diffuse
    /// through χ once per elapsed timestamp.
    pub fn advance_by(&mut self, k: usize) {
        self.state.advance_by(&self.model, k);
    }

    /// Class-probability prediction for an unlabeled record (Eq. 10):
    /// `Highorder(l|x) = Σ_c Pₜ⁻(c)·M_c(l|x)`.
    pub fn predict_proba(&mut self, x: &[f64], out: &mut [f64]) {
        self.state.predict_proba(&self.model, x, out);
    }

    /// Unique-class prediction (Eq. 11): the argmax of Eq. 10.
    pub fn predict(&mut self, x: &[f64]) -> ClassId {
        self.state.predict(&self.model, x)
    }

    /// Unique-class prediction with the early-terminated enumeration of
    /// §III-C: concepts are consulted in decreasing order of active
    /// probability, and enumeration stops as soon as the remaining
    /// probability mass cannot change the argmax. In the usual case of a
    /// clearly-identified current concept, exactly one classifier runs.
    pub fn predict_pruned(&mut self, x: &[f64]) -> ClassId {
        let (pred, consulted) = self.state.predict_pruned(&self.model, x);
        if self.obs.enabled() {
            self.predicted += 1;
            self.consulted += consulted as u64;
            let skipped = self.model.n_concepts() - consulted;
            if skipped > 0 {
                self.pruned_records += 1;
                // One event per early-terminated prediction: the remaining
                // posteriors were too small to change the argmax (§III-C).
                self.obs.count("online.prune", skipped as u64);
            }
        }
        pred
    }

    /// Predict the unlabeled record of timestamp `t`, then absorb its
    /// label — the benchmark loop used by all experiments (the prediction
    /// never sees `yₜ`, matching the paper's protocol where `xₜ` is
    /// predicted with labels `y₁ … y_{t−1}`).
    pub fn step(&mut self, x: &[f64], y: ClassId) -> ClassId {
        if !self.obs.enabled() {
            let pred = self.predict_pruned(x);
            self.observe(x, y);
            return pred;
        }
        let t0 = Instant::now();
        let pred = self.predict_pruned(x);
        self.observe(x, y);
        self.latency.record(t0.elapsed().as_nanos() as f64);
        pred
    }

    /// Emit the metrics accumulated since the last flush — the latency
    /// histogram, record/consultation/prune counters and the
    /// label-agreement count — and reset them. A no-op when unobserved or
    /// nothing accumulated; called automatically on drop, so short-lived
    /// predictors still land in the trace (and a drop after an explicit
    /// flush emits nothing twice).
    pub fn flush_trace(&mut self) {
        if !self.obs.enabled() || (self.observed == 0 && self.predicted == 0) {
            return;
        }
        if self.latency.count() > 0 {
            self.obs.hist("online.latency_ns", &self.latency);
        }
        self.obs.count("online.records_predicted", self.predicted);
        self.obs.count("online.records_observed", self.observed);
        self.obs.count("online.concepts_consulted", self.consulted);
        self.obs.count("online.pruned_records", self.pruned_records);
        self.obs.count("online.label_agree", self.map_agree);
        self.latency = Histogram::new();
        self.observed = 0;
        self.predicted = 0;
        self.consulted = 0;
        self.pruned_records = 0;
        self.map_agree = 0;
    }
}

impl Drop for OnlinePredictor {
    fn drop(&mut self) {
        self.flush_trace();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use crate::transition::TransitionStats;
    use crate::Concept;
    use hom_classifiers::{DecisionTreeLearner, MajorityClassifier};
    use hom_cluster::ClusterParams;
    use hom_data::stream::collect;
    use hom_data::{Attribute, Schema, StreamSource};
    use hom_datagen::stagger::stagger_label;
    use hom_datagen::{StaggerParams, StaggerSource};

    /// Hand-built two-concept model: concept 0 always predicts class 0,
    /// concept 1 always predicts class 1, both with error 0.1.
    fn toy_model() -> Arc<HighOrderModel> {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 0])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
            Concept {
                id: 1,
                model: Arc::new(MajorityClassifier::from_counts(&[0, 10])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 100), (1, 100)]);
        Arc::new(HighOrderModel::from_parts(schema, concepts, stats))
    }

    #[test]
    fn probabilities_start_uniform_and_stay_normalized() {
        let mut p = OnlinePredictor::new(toy_model());
        assert_eq!(p.concept_probs(), &[0.5, 0.5]);
        for t in 0..50 {
            let y = u32::from(t % 2 == 0);
            p.observe(&[0.0], y);
            let sum: f64 = p.concept_probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum = {sum} at t = {t}");
        }
    }

    #[test]
    fn evidence_concentrates_on_consistent_concept() {
        let mut p = OnlinePredictor::new(toy_model());
        for _ in 0..20 {
            p.observe(&[0.0], 1); // always class b: concept 1's prediction
        }
        assert_eq!(p.current_concept(), 1);
        assert!(p.concept_probs()[1] > 0.9);
        assert_eq!(p.predict(&[0.0]), 1);
        assert_eq!(p.predict_pruned(&[0.0]), 1);
    }

    #[test]
    fn filter_recovers_after_concept_change() {
        let mut p = OnlinePredictor::new(toy_model());
        for _ in 0..30 {
            p.observe(&[0.0], 0);
        }
        assert_eq!(p.current_concept(), 0);
        // concept changes: labels flip
        let mut recovered_at = None;
        for t in 0..30 {
            p.observe(&[0.0], 1);
            if recovered_at.is_none() && p.current_concept() == 1 {
                recovered_at = Some(t);
            }
        }
        let t = recovered_at.expect("filter never recovered");
        assert!(t <= 5, "recovery took {t} records");
    }

    #[test]
    fn pruned_prediction_matches_full_ensemble() {
        let mut src = StaggerSource::new(StaggerParams {
            lambda: 0.01,
            ..Default::default()
        });
        let (data, _) = collect(&mut src, 3000);
        let (model, _) = build(
            &data,
            &DecisionTreeLearner::new(),
            &BuildParams {
                cluster: ClusterParams {
                    block_size: 10,
                    seed: 9,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let model = Arc::new(model);
        let mut a = OnlinePredictor::new(Arc::clone(&model));
        let mut b = OnlinePredictor::new(model);
        let mut src2 = StaggerSource::new(StaggerParams {
            lambda: 0.01,
            seed: 5,
            ..Default::default()
        });
        for _ in 0..500 {
            let r = src2.next_record();
            assert_eq!(
                a.predict(&r.x),
                b.predict_pruned(&r.x),
                "pruned and full predictions diverged"
            );
            a.observe(&r.x, r.y);
            b.observe(&r.x, r.y);
        }
    }

    #[test]
    fn tracks_stagger_stream_with_low_error() {
        let mut src = StaggerSource::new(StaggerParams {
            lambda: 0.01,
            ..Default::default()
        });
        let (data, _) = collect(&mut src, 4000);
        let (model, _) = build(
            &data,
            &DecisionTreeLearner::new(),
            &BuildParams {
                cluster: ClusterParams {
                    block_size: 10,
                    seed: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mut p = OnlinePredictor::new(Arc::new(model));
        // fresh test stream continuing from the same generator
        let mut wrong = 0usize;
        let n = 4000;
        for _ in 0..n {
            let r = src.next_record();
            if p.step(&r.x, r.y) != r.y {
                wrong += 1;
            }
        }
        let err = wrong as f64 / n as f64;
        assert!(err < 0.05, "online error = {err}");
    }

    #[test]
    fn advance_without_labels_diffuses_probability() {
        let mut p = OnlinePredictor::new(toy_model());
        for _ in 0..20 {
            p.observe(&[0.0], 0);
        }
        let before = p.concept_probs()[0];
        // 200 unlabeled timestamps: mass should leak toward concept 1
        for _ in 0..200 {
            p.advance();
        }
        let after = p.concept_probs()[0];
        assert!(after < before);
        let sum: f64 = p.concept_probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stagger_concept_models_are_usable_after_identification() {
        let mut src = StaggerSource::new(StaggerParams {
            lambda: 0.01,
            ..Default::default()
        });
        let (data, _) = collect(&mut src, 4000);
        let (model, _) = build(
            &data,
            &DecisionTreeLearner::new(),
            &BuildParams {
                cluster: ClusterParams {
                    block_size: 10,
                    seed: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mut p = OnlinePredictor::new(Arc::new(model));
        // Feed 100 labeled records from pure concept 2, then check fresh
        // predictions match concept 2's ground truth.
        let mut rng = hom_data::rng::seeded(4242);
        use rand::Rng;
        let mut gen = || {
            let x = [
                f64::from(rng.gen_range(0..3u8)),
                f64::from(rng.gen_range(0..3u8)),
                f64::from(rng.gen_range(0..3u8)),
            ];
            let y = stagger_label(2, x[0], x[1], x[2]);
            (x, y)
        };
        for _ in 0..100 {
            let (x, y) = gen();
            p.observe(&x, y);
        }
        let mut wrong = 0;
        for _ in 0..200 {
            let (x, y) = gen();
            if p.predict_pruned(&x) != y {
                wrong += 1;
            }
        }
        assert!(wrong <= 6, "wrong = {wrong}/200");
    }

    #[test]
    fn predictor_and_bare_state_agree_exactly() {
        let model = toy_model();
        let mut p = OnlinePredictor::new(Arc::clone(&model));
        let mut s = FilterState::new(&model);
        for t in 0..60u32 {
            let x = [f64::from(t % 3)];
            let y = u32::from(t % 5 == 0);
            assert_eq!(p.predict_pruned(&x), s.predict_pruned(&model, &x).0);
            p.observe(&x, y);
            s.observe(&model, &x, y);
            let pb: Vec<u64> = p.state().posterior().iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u64> = s.posterior().iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, sb, "posterior diverged at t = {t}");
        }
    }

    #[test]
    fn state_handoff_resumes_bit_identically() {
        let model = toy_model();
        let mut a = OnlinePredictor::new(Arc::clone(&model));
        let mut b = OnlinePredictor::new(Arc::clone(&model));
        for t in 0..25u32 {
            a.step(&[0.0], t % 2);
            b.step(&[0.0], t % 2);
        }
        // hand b's state to a fresh predictor mid-stream
        let state = b.into_state();
        let mut b = OnlinePredictor::from_state(model, state, &OnlineOptions::default());
        for t in 0..25u32 {
            assert_eq!(a.step(&[0.0], t % 3), b.step(&[0.0], t % 3));
        }
        let ab: Vec<u64> = a.concept_probs().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = b.concept_probs().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
    }
}
