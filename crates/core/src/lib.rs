//! The high-order model (the paper's primary contribution).
//!
//! A [`HighOrderModel`] is mined **offline** from a historical labeled
//! stream ([`build()`]): concept clustering (from `hom-cluster`) finds the
//! stable concepts, one classifier is trained per concept on *all* of that
//! concept's data scattered across the stream, and the concept-change
//! statistics `Len_i` (mean occurrence length), `Freq_i` (occurrence
//! frequency) and the transition kernel `χ(i,j)` (Eq. 6) are collected
//! ([`transition`]).
//!
//! At **runtime** ([`online`]) an [`OnlinePredictor`] maintains each
//! concept's *active probability* — the probability that it is the current
//! concept — with a Bayesian filter: priors evolve through `χ` (Eq. 5) and
//! posteriors absorb the evidence of each labeled record through
//! `ψ(c, yₜ)` (Eqs. 7–9). Unlabeled records are classified by the
//! probability-weighted ensemble of concept classifiers (Eq. 10), with an
//! optional early-terminated enumeration (§III-C) that usually consults a
//! single classifier.
//!
//! The [`viterbi`] module implements the paper's stated future-work
//! extension: offline smoothing of the concept sequence with a Viterbi
//! pass over the same HMM.

#![warn(missing_docs)]

pub mod build;
pub mod compiled;
pub mod concept;
pub mod extend;
pub mod filter;
pub mod model_codec;
pub mod online;
pub mod snapshot;
pub mod transition;
pub mod viterbi;

pub use build::{build, build_with, BuildOptions, BuildParams, BuildReport, HighOrderModel};
pub use compiled::{BatchStats, BatchTable, CompiledModel, KernelScratch};
pub use concept::Concept;
pub use filter::{FilterIntrospection, FilterState, FilterView};
pub use model_codec::{
    decode_model, encode_model, model_epoch, ModelCodecError, MODEL_MAGIC, MODEL_VERSION,
};
pub use online::{OnlineOptions, OnlinePredictor};
pub use snapshot::{fnv1a, snapshot_epoch, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use transition::TransitionStats;
