//! The per-stream state of the online Bayesian filter (paper §III).
//!
//! [`FilterState`] is everything that changes as one stream's labels
//! arrive — the posterior/prior over concepts, the prune order and the
//! scratch buffers — with the immutable [`HighOrderModel`] factored out.
//! The split is what makes the model servable: one `Arc<HighOrderModel>`
//! can back any number of independent streams, each a compact, cloneable
//! `FilterState` (see the `hom-serve` crate, which multiplexes millions
//! of them over a sharded table).
//!
//! Every method takes the model by reference and is bit-identical to the
//! corresponding [`crate::OnlinePredictor`] operation — the predictor is
//! now a thin wrapper that adds observability around this state. A state
//! must only ever be used with the model it was created (or restored)
//! for; methods assert the concept count matches.
//!
//! States can be serialized to a small versioned binary snapshot and
//! restored bit-identically later ([`FilterState::snapshot`] /
//! [`FilterState::restore`] in [`crate::snapshot`]) — the mechanism the
//! serving layer uses to evict idle streams and resume them without any
//! drift.

use hom_classifiers::argmax;
use hom_data::ClassId;

use crate::build::HighOrderModel;

/// The mutable per-stream state of the online filter: a probability
/// distribution over concepts plus the scratch the update equations need.
///
/// Cheap to clone (a handful of `n_concepts`-sized vectors, no model) and
/// independent of every other stream's state.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterState {
    /// Posterior `P_{t-1}(c)` after the last observed label.
    pub(crate) posterior: Vec<f64>,
    /// Prior `Pₜ⁻(c)` for the current timestamp (derived from
    /// `posterior`), the distribution predictions use.
    pub(crate) prior: Vec<f64>,
    /// Concept order sorted by descending prior (for pruned prediction).
    pub(crate) order: Vec<u32>,
    /// Scratch buffer for per-concept class distributions.
    scratch: Vec<f64>,
    /// Scratch buffer in concept space for the χ advance.
    scratch_c: Vec<f64>,
    /// Scratch buffer for ψ(c, yₜ) — each entry costs one classifier
    /// prediction, so [`Self::absorb`] computes it exactly once.
    pub(crate) psi: Vec<f64>,
}

impl FilterState {
    /// The uniform initial state `P₁(c) = 1/N` (§III-B) for `model`.
    ///
    /// # Panics
    /// Panics if the model has no concepts.
    pub fn new(model: &HighOrderModel) -> Self {
        let n = model.n_concepts();
        assert!(n > 0, "model has no concepts");
        let uniform = vec![1.0 / n as f64; n];
        let n_classes = model.schema().n_classes();
        FilterState {
            posterior: uniform.clone(),
            prior: uniform,
            order: (0..n as u32).collect(),
            scratch: vec![0.0; n_classes],
            scratch_c: vec![0.0; n],
            psi: vec![0.0; n],
        }
    }

    /// Rebuild a state from its distribution parts (the snapshot codec's
    /// entry point). `order` must already be the descending-prior
    /// permutation the state was saved with — re-sorting here could break
    /// bit-identical resumption on tied priors.
    pub(crate) fn from_parts(
        model: &HighOrderModel,
        posterior: Vec<f64>,
        prior: Vec<f64>,
        order: Vec<u32>,
    ) -> Self {
        let n = model.n_concepts();
        debug_assert_eq!(posterior.len(), n);
        FilterState {
            posterior,
            prior,
            order,
            scratch: vec![0.0; model.schema().n_classes()],
            scratch_c: vec![0.0; n],
            psi: vec![0.0; n],
        }
    }

    #[inline]
    fn check(&self, model: &HighOrderModel) {
        assert_eq!(
            self.posterior.len(),
            model.n_concepts(),
            "FilterState used with a different model than it was created for"
        );
    }

    /// Number of concepts this state tracks.
    pub fn n_concepts(&self) -> usize {
        self.posterior.len()
    }

    /// The active probabilities used for prediction at the current
    /// timestamp (`Pₜ⁻`).
    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    /// The posterior `P_{t-1}(c)` after the last observed label.
    pub fn posterior(&self) -> &[f64] {
        &self.posterior
    }

    /// Concept ids in descending order of active probability (the §III-C
    /// enumeration order).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The most likely current concept.
    pub fn current_concept(&self) -> usize {
        argmax(&self.prior)
    }

    /// Advance one timestamp without a label: posterior → prior through χ
    /// (Eq. 5), with the posterior defaulting to the prior until a label
    /// arrives.
    pub fn advance(&mut self, model: &HighOrderModel) {
        self.check(model);
        model.stats().advance(&self.posterior, &mut self.scratch_c);
        self.prior.copy_from_slice(&self.scratch_c);
        // Posterior defaults to the prior until a label arrives.
        self.posterior.copy_from_slice(&self.scratch_c);
        self.resort();
    }

    /// Advance `k` timestamps at once (the variable-rate adaptation of
    /// §III-B).
    pub fn advance_by(&mut self, model: &HighOrderModel, k: usize) {
        for _ in 0..k {
            self.advance(model);
        }
    }

    /// Absorb the labeled record of the current timestamp: posterior ∝
    /// prior · ψ(c, yₜ), normalized (Eqs. 7–9). Does **not** advance to
    /// the next timestamp — callers that need the full lifecycle use
    /// [`Self::observe`]; the split exists so the predictor can read the
    /// fresh posterior (and ψ) for its metrics before the prior rolls.
    pub fn absorb(&mut self, model: &HighOrderModel, x: &[f64], y: ClassId) {
        self.check(model);
        // ψ(c, yₜ) once per concept — each entry costs a full classifier
        // prediction, so it is computed into the scratch buffer and reused
        // by both the normalizer and the posterior update.
        for (c, slot) in model.concepts().iter().zip(self.psi.iter_mut()) {
            *slot = c.psi(x, y);
        }
        let mut sum = 0.0;
        for (p, psi) in self.prior.iter().zip(self.psi.iter()) {
            sum += p * psi;
        }
        if sum <= 0.0 {
            // All concepts had zero probability mass (cannot happen with
            // clamped errors, but stay safe): reset to uniform.
            let n = self.posterior.len() as f64;
            self.posterior.fill(1.0 / n);
        } else {
            for ((q, p), psi) in self
                .posterior
                .iter_mut()
                .zip(self.prior.iter())
                .zip(self.psi.iter())
            {
                *q = p * psi / sum;
            }
        }
    }

    /// Pre-compute the next timestamp's prior from the posterior (the
    /// tail of Eq. 5 after an observation) and refresh the prune order.
    pub fn roll_prior(&mut self, model: &HighOrderModel) {
        self.check(model);
        model.stats().advance(&self.posterior, &mut self.scratch_c);
        self.prior.copy_from_slice(&self.scratch_c);
        self.resort();
    }

    /// The full labeled-record lifecycle: [`Self::absorb`] then
    /// [`Self::roll_prior`].
    pub fn observe(&mut self, model: &HighOrderModel, x: &[f64], y: ClassId) {
        self.absorb(model, x, y);
        self.roll_prior(model);
    }

    fn resort(&mut self) {
        let prior = &self.prior;
        self.order
            .sort_unstable_by(|&a, &b| prior[b as usize].total_cmp(&prior[a as usize]));
    }

    /// Class-probability prediction for an unlabeled record (Eq. 10):
    /// `Highorder(l|x) = Σ_c Pₜ⁻(c)·M_c(l|x)`.
    pub fn predict_proba(&mut self, model: &HighOrderModel, x: &[f64], out: &mut [f64]) {
        self.check(model);
        out.fill(0.0);
        for (c, &p) in model.concepts().iter().zip(self.prior.iter()) {
            if p == 0.0 {
                continue;
            }
            c.model.predict_proba(x, &mut self.scratch);
            for (o, &v) in out.iter_mut().zip(self.scratch.iter()) {
                *o += p * v;
            }
        }
    }

    /// Unique-class prediction (Eq. 11): the argmax of Eq. 10.
    pub fn predict(&mut self, model: &HighOrderModel, x: &[f64]) -> ClassId {
        let mut out = vec![0.0; model.schema().n_classes()];
        self.predict_proba(model, x, &mut out);
        argmax(&out) as ClassId
    }

    /// The §III-C early-terminated enumeration; returns the prediction and
    /// how many concept classifiers were consulted before the margin test
    /// terminated it. Identical to [`Self::predict`] in result, usually
    /// much cheaper: in the common case of a clearly-identified current
    /// concept exactly one classifier runs.
    pub fn predict_pruned(&mut self, model: &HighOrderModel, x: &[f64]) -> (ClassId, usize) {
        self.check(model);
        let n_classes = model.schema().n_classes();
        let mut scores = vec![0.0; n_classes];
        // Remaining probability mass after each prefix of the enumeration.
        let mut remaining: f64 = self.prior.iter().sum();
        for (rank, &ci) in self.order.iter().enumerate() {
            let p = self.prior[ci as usize];
            remaining -= p;
            if p > 0.0 {
                model.concepts()[ci as usize]
                    .model
                    .predict_proba(x, &mut self.scratch);
                for (s, &v) in scores.iter_mut().zip(self.scratch.iter()) {
                    *s += p * v;
                }
            }
            // A remaining concept can add at most `remaining` to any one
            // class; if the leader's margin exceeds that, the answer is
            // decided (§III-C).
            let best = argmax(&scores);
            let best_v = scores[best];
            let runner_up = scores
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != best)
                .map(|(_, &v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            if best_v - runner_up > remaining {
                return (best as ClassId, rank + 1);
            }
        }
        (argmax(&scores) as ClassId, self.order.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionStats;
    use crate::Concept;
    use hom_classifiers::MajorityClassifier;
    use hom_data::{Attribute, Schema};
    use std::sync::Arc;

    fn toy_model() -> HighOrderModel {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 0])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
            Concept {
                id: 1,
                model: Arc::new(MajorityClassifier::from_counts(&[0, 10])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 100), (1, 100)]);
        HighOrderModel::from_parts(schema, concepts, stats)
    }

    #[test]
    fn starts_uniform_and_concentrates() {
        let m = toy_model();
        let mut s = FilterState::new(&m);
        assert_eq!(s.prior(), &[0.5, 0.5]);
        for _ in 0..20 {
            s.observe(&m, &[0.0], 1);
        }
        assert_eq!(s.current_concept(), 1);
        assert!(s.posterior()[1] > 0.9);
        assert_eq!(s.predict(&m, &[0.0]), 1);
        assert_eq!(s.predict_pruned(&m, &[0.0]).0, 1);
    }

    #[test]
    fn clone_is_independent() {
        let m = toy_model();
        let mut a = FilterState::new(&m);
        for _ in 0..5 {
            a.observe(&m, &[0.0], 0);
        }
        let mut b = a.clone();
        b.observe(&m, &[0.0], 1);
        // the original is untouched by the clone's update
        assert_ne!(a.posterior()[0].to_bits(), b.posterior()[0].to_bits());
        let sum: f64 = a.posterior().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_then_roll_equals_observe() {
        let m = toy_model();
        let mut a = FilterState::new(&m);
        let mut b = FilterState::new(&m);
        for t in 0..30u32 {
            let y = t % 2;
            a.observe(&m, &[0.0], y);
            b.absorb(&m, &[0.0], y);
            b.roll_prior(&m);
            assert_eq!(a.posterior(), b.posterior());
            assert_eq!(a.prior(), b.prior());
            assert_eq!(a.order(), b.order());
        }
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn rejects_wrong_model() {
        let m = toy_model();
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let one = HighOrderModel::from_parts(
            schema,
            vec![Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[1, 0])),
                err: 0.1,
                n_records: 1,
                n_occurrences: 1,
            }],
            TransitionStats::from_occurrences(1, &[(0, 10)]),
        );
        let mut s = FilterState::new(&m);
        s.advance(&one);
    }
}
