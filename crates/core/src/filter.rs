//! The per-stream state of the online Bayesian filter (paper §III).
//!
//! [`FilterState`] is everything that changes as one stream's labels
//! arrive — the posterior/prior over concepts, the prune order and the
//! scratch buffers — with the immutable [`HighOrderModel`] factored out.
//! The split is what makes the model servable: one `Arc<HighOrderModel>`
//! can back any number of independent streams, each a compact, cloneable
//! `FilterState` (see the `hom-serve` crate, which multiplexes millions
//! of them over a sharded table).
//!
//! Every method takes the model by reference and is bit-identical to the
//! corresponding [`crate::OnlinePredictor`] operation — the predictor is
//! now a thin wrapper that adds observability around this state. A state
//! must only ever be used with the model it was created (or restored)
//! for; methods assert the concept count matches.
//!
//! States can be serialized to a small versioned binary snapshot and
//! restored bit-identically later ([`FilterState::snapshot`] /
//! [`FilterState::restore`] in [`crate::snapshot`]) — the mechanism the
//! serving layer uses to evict idle streams and resume them without any
//! drift.

use hom_classifiers::argmax;
use hom_data::ClassId;

use crate::build::HighOrderModel;
use crate::transition::TransitionStats;

/// The mutable per-stream state of the online filter: a probability
/// distribution over concepts plus the scratch the update equations need.
///
/// Cheap to clone (a handful of `n_concepts`-sized vectors, no model) and
/// independent of every other stream's state.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterState {
    /// Posterior `P_{t-1}(c)` after the last observed label.
    pub(crate) posterior: Vec<f64>,
    /// Prior `Pₜ⁻(c)` for the current timestamp (derived from
    /// `posterior`), the distribution predictions use.
    pub(crate) prior: Vec<f64>,
    /// Concept order sorted by descending prior (for pruned prediction).
    pub(crate) order: Vec<u32>,
    /// Scratch buffer for per-concept class distributions.
    scratch: Vec<f64>,
    /// Scratch buffer for ψ(c, yₜ) — each entry costs one classifier
    /// prediction, so [`Self::absorb`] computes it exactly once.
    pub(crate) psi: Vec<f64>,
    /// The marginal likelihood `Σ_c Pₜ⁻(c)·ψ(c, yₜ)` of the last absorbed
    /// label — the Eq. 7 normalizer, exported as novelty evidence
    /// ([`Self::last_likelihood`]). `1.0` until a label is absorbed.
    last_likelihood: f64,
}

impl FilterState {
    /// The uniform initial state `P₁(c) = 1/N` (§III-B) for `model`.
    ///
    /// # Panics
    /// Panics if the model has no concepts.
    pub fn new(model: &HighOrderModel) -> Self {
        let n = model.n_concepts();
        assert!(n > 0, "model has no concepts");
        let uniform = vec![1.0 / n as f64; n];
        let n_classes = model.schema().n_classes();
        FilterState {
            posterior: uniform.clone(),
            prior: uniform,
            order: (0..n as u32).collect(),
            scratch: vec![0.0; n_classes],
            psi: vec![0.0; n],
            last_likelihood: 1.0,
        }
    }

    /// Rebuild a state from its distribution parts (the snapshot codec's
    /// entry point). `order` must already be the descending-prior
    /// permutation the state was saved with — re-sorting here could break
    /// bit-identical resumption on tied priors.
    pub(crate) fn from_parts(
        model: &HighOrderModel,
        posterior: Vec<f64>,
        prior: Vec<f64>,
        order: Vec<u32>,
    ) -> Self {
        let n = model.n_concepts();
        debug_assert_eq!(posterior.len(), n);
        FilterState {
            posterior,
            prior,
            order,
            scratch: vec![0.0; model.schema().n_classes()],
            psi: vec![0.0; n],
            last_likelihood: 1.0,
        }
    }

    /// Assemble a state from distributions stored elsewhere — the way a
    /// serving layer's structure-of-arrays stream table materializes one
    /// of its rows into an owned state (for introspection, snapshots or
    /// migration). `order` must be the descending-prior permutation the
    /// row was maintained with, and `last_likelihood` the row's Eq. 7
    /// normalizer; all values are copied bit-for-bit.
    pub fn assemble(
        model: &HighOrderModel,
        posterior: Vec<f64>,
        prior: Vec<f64>,
        order: Vec<u32>,
        last_likelihood: f64,
    ) -> Self {
        let mut state = FilterState::from_parts(model, posterior, prior, order);
        state.last_likelihood = last_likelihood;
        state
    }

    #[inline]
    fn check(&self, model: &HighOrderModel) {
        assert_eq!(
            self.posterior.len(),
            model.n_concepts(),
            "FilterState used with a different model than it was created for"
        );
    }

    /// Number of concepts this state tracks.
    pub fn n_concepts(&self) -> usize {
        self.posterior.len()
    }

    /// The active probabilities used for prediction at the current
    /// timestamp (`Pₜ⁻`).
    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    /// The posterior `P_{t-1}(c)` after the last observed label.
    pub fn posterior(&self) -> &[f64] {
        &self.posterior
    }

    /// Concept ids in descending order of active probability (the §III-C
    /// enumeration order).
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The most likely current concept.
    pub fn current_concept(&self) -> usize {
        argmax(&self.prior)
    }

    /// The marginal likelihood `Σ_c Pₜ⁻(c)·ψ(c, yₜ)` of the **last
    /// absorbed label** — the normalizer of Eq. 7, and the filter's
    /// native measure of how well *any* mined concept explains the
    /// stream. On-model it hovers near `1 − Err` of the active concept;
    /// on a concept the history never contained it collapses toward the
    /// concepts' error rates. `1.0` until the first label is absorbed.
    /// The novelty detector of `hom-adapt` windows this value.
    pub fn last_likelihood(&self) -> f64 {
        self.last_likelihood
    }

    /// ψ(c, yₜ) per concept for the last absorbed label (Eqs. 7–8).
    /// All-zero until the first label is absorbed.
    pub fn last_psi(&self) -> &[f64] {
        &self.psi
    }

    /// Shannon entropy of the posterior, normalized by `ln N` to `[0, 1]`
    /// (0 = one concept certain, 1 = uniform confusion). Saturating
    /// entropy is the second novelty signal: when no mined concept
    /// explains the labels, the posterior keeps being pulled between
    /// concepts and never settles. `0` for a single-concept model.
    pub fn posterior_entropy(&self) -> f64 {
        let n = self.posterior.len();
        if n <= 1 {
            return 0.0;
        }
        let h: f64 = self
            .posterior
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum();
        h / (n as f64).ln()
    }

    /// An owned, self-describing snapshot of the observable filter
    /// quantities — what a live introspection endpoint (the `/streams/…`
    /// route of `hom-serve`'s metrics listener) serves without holding
    /// any lock on the stream. Values are copied bit-for-bit from the
    /// state; taking a snapshot never mutates anything.
    pub fn introspect(&self) -> FilterIntrospection {
        FilterIntrospection {
            posterior: self.posterior.clone(),
            prior: self.prior.clone(),
            order: self.order.clone(),
            current_concept: self.current_concept(),
            last_likelihood: self.last_likelihood,
            posterior_entropy: self.posterior_entropy(),
        }
    }

    /// Carry this state over to `model`, a model that contains every
    /// concept of the state's original model at the same id (plus,
    /// possibly, newly admitted ones) — the per-stream migration a
    /// serving engine performs when it hot-swaps an extended model in.
    ///
    /// Newly admitted concepts receive their **stationary frequency**
    /// `Freq_j` as posterior/prior mass (the model's own estimate of the
    /// probability an arbitrary record belongs to them), existing
    /// concepts keep their relative weights scaled by the remaining
    /// mass, and both distributions are re-normalized. With an unchanged
    /// concept count (a stats-only rebuild after a matched occurrence)
    /// migration preserves the distributions bit-identically.
    ///
    /// # Panics
    /// Panics if `model` has fewer concepts than the state (shrinking
    /// never happens through the extension API; a serving layer rejects
    /// it before migrating — see `hom-serve`'s `SwapError`).
    pub fn migrate(&self, model: &HighOrderModel) -> FilterState {
        migrate_parts(model, &self.posterior, &self.prior, &self.order)
    }
    /// Borrow the distributions as a [`FilterView`] — the form the batch
    /// kernel ([`crate::compiled`]) operates on. Updates made through the
    /// view are updates of this state.
    pub fn as_view(&mut self) -> FilterView<'_> {
        FilterView {
            posterior: &mut self.posterior,
            prior: &mut self.prior,
            order: &mut self.order,
            last_likelihood: &mut self.last_likelihood,
        }
    }

    /// Disjoint borrows of the distribution fields (as a [`FilterView`])
    /// and the two scratch fields (concept-space ψ, class-space rows) —
    /// the delegation plumbing that routes every update through the same
    /// view core regardless of where the distributions are stored.
    fn split(&mut self) -> (FilterView<'_>, &mut [f64], &mut [f64]) {
        (
            FilterView {
                posterior: &mut self.posterior,
                prior: &mut self.prior,
                order: &mut self.order,
                last_likelihood: &mut self.last_likelihood,
            },
            &mut self.psi,
            &mut self.scratch,
        )
    }

    /// Advance one timestamp without a label: posterior → prior through χ
    /// (Eq. 5), with the posterior defaulting to the prior until a label
    /// arrives.
    pub fn advance(&mut self, model: &HighOrderModel) {
        self.check(model);
        let (mut view, _, _) = self.split();
        view.advance_with(model.stats());
    }

    /// Advance `k` timestamps at once (the variable-rate adaptation of
    /// §III-B).
    pub fn advance_by(&mut self, model: &HighOrderModel, k: usize) {
        for _ in 0..k {
            self.advance(model);
        }
    }

    /// Absorb the labeled record of the current timestamp: posterior ∝
    /// prior · ψ(c, yₜ), normalized (Eqs. 7–9). Does **not** advance to
    /// the next timestamp — callers that need the full lifecycle use
    /// [`Self::observe`]; the split exists so the predictor can read the
    /// fresh posterior (and ψ) for its metrics before the prior rolls.
    pub fn absorb(&mut self, model: &HighOrderModel, x: &[f64], y: ClassId) {
        self.check(model);
        let (mut view, psi, _) = self.split();
        view.absorb(model, x, y, psi);
    }

    /// Pre-compute the next timestamp's prior from the posterior (the
    /// tail of Eq. 5 after an observation) and refresh the prune order.
    pub fn roll_prior(&mut self, model: &HighOrderModel) {
        self.check(model);
        let (mut view, _, _) = self.split();
        view.roll_prior_with(model.stats());
    }

    /// The full labeled-record lifecycle: [`Self::absorb`] then
    /// [`Self::roll_prior`].
    pub fn observe(&mut self, model: &HighOrderModel, x: &[f64], y: ClassId) {
        self.absorb(model, x, y);
        self.roll_prior(model);
    }

    /// Class-probability prediction for an unlabeled record (Eq. 10):
    /// `Highorder(l|x) = Σ_c Pₜ⁻(c)·M_c(l|x)`.
    pub fn predict_proba(&mut self, model: &HighOrderModel, x: &[f64], out: &mut [f64]) {
        self.check(model);
        let (view, _, classes) = self.split();
        view.predict_proba(model, x, out, classes);
    }

    /// Unique-class prediction (Eq. 11): the argmax of Eq. 10.
    pub fn predict(&mut self, model: &HighOrderModel, x: &[f64]) -> ClassId {
        let mut out = vec![0.0; model.schema().n_classes()];
        self.predict_proba(model, x, &mut out);
        argmax(&out) as ClassId
    }

    /// The §III-C early-terminated enumeration; returns the prediction and
    /// how many concept classifiers were consulted before the margin test
    /// terminated it. Identical to [`Self::predict`] in result, usually
    /// much cheaper: in the common case of a clearly-identified current
    /// concept exactly one classifier runs.
    pub fn predict_pruned(&mut self, model: &HighOrderModel, x: &[f64]) -> (ClassId, usize) {
        self.check(model);
        let (view, _, classes) = self.split();
        view.predict_pruned(model, x, classes)
    }
}

/// A mutable borrow of one stream's filter distributions, wherever they
/// live — a [`FilterState`]'s own vectors, or one row of a serving
/// layer's structure-of-arrays stream table.
///
/// Every update equation of §III runs through this view, which is what
/// makes the storage layout irrelevant to results: the scalar
/// [`FilterState`] methods and the batch kernel of [`crate::compiled`]
/// both borrow their operands as a `FilterView` and execute the *same*
/// floating-point code, so a posterior is bit-identical no matter which
/// path — or which memory layout — produced it.
///
/// Scratch buffers are passed in explicitly (a view owns nothing): ψ is
/// concept-sized, the class scratch is class-sized. Callers reuse them
/// across streams; a [`FilterState`] passes its own.
pub struct FilterView<'a> {
    /// Posterior `P_{t-1}(c)` after the last observed label.
    pub posterior: &'a mut [f64],
    /// Prior `Pₜ⁻(c)` for the current timestamp.
    pub prior: &'a mut [f64],
    /// Concept ids sorted by descending prior (the §III-C enumeration).
    pub order: &'a mut [u32],
    /// Marginal likelihood of the last absorbed label (Eq. 7 normalizer).
    pub last_likelihood: &'a mut f64,
}

impl FilterView<'_> {
    #[inline]
    fn check(&self, model: &HighOrderModel) {
        assert_eq!(
            self.posterior.len(),
            model.n_concepts(),
            "FilterState used with a different model than it was created for"
        );
    }

    /// The χ-advance core (Eq. 5) shared by the scalar path and the batch
    /// kernel: both run this exact code, so an advance is bit-identical
    /// no matter which path executed it. The prior is the Eq. 5 output
    /// buffer directly (it never aliases the posterior), so the advance
    /// needs no scratch.
    pub fn advance_with(&mut self, stats: &TransitionStats) {
        stats.advance(self.posterior, self.prior);
        // Posterior defaults to the prior until a label arrives.
        self.posterior.copy_from_slice(self.prior);
        self.resort();
    }

    /// Advance one timestamp without a label (Eq. 5 against `model`'s χ).
    pub fn advance(&mut self, model: &HighOrderModel) {
        self.check(model);
        self.advance_with(model.stats());
    }

    /// Advance `k` timestamps at once (the variable-rate adaptation of
    /// §III-B).
    pub fn advance_by(&mut self, model: &HighOrderModel, k: usize) {
        for _ in 0..k {
            self.advance(model);
        }
    }

    /// Absorb a labeled record the scalar way: ψ(c, yₜ) once per concept
    /// (Eq. 8, one classifier prediction each) into the `psi` scratch,
    /// then the shared Eq. 7–9 core ([`Self::absorb_psi`]).
    pub fn absorb(&mut self, model: &HighOrderModel, x: &[f64], y: ClassId, psi: &mut [f64]) {
        self.check(model);
        // ψ(c, yₜ) once per concept — each entry costs a full classifier
        // prediction, so it is computed into the scratch buffer and reused
        // by both the normalizer and the posterior update.
        for (c, slot) in model.concepts().iter().zip(psi.iter_mut()) {
            *slot = c.psi(x, y);
        }
        self.absorb_psi(psi);
    }

    /// The Eq. 7–9 posterior update given an already-filled ψ buffer:
    /// normalizer, likelihood export, and `posterior ∝ prior · ψ`. The
    /// scalar [`Self::absorb`] and the batch kernel (which fills ψ from
    /// its precomputed hit/miss tables) both end here, which is what
    /// makes their posteriors bit-identical.
    pub fn absorb_psi(&mut self, psi: &[f64]) {
        let mut sum = 0.0;
        for (p, psi) in self.prior.iter().zip(psi.iter()) {
            sum += p * psi;
        }
        *self.last_likelihood = sum.max(0.0);
        if sum <= 0.0 {
            // All concepts had zero probability mass (cannot happen with
            // clamped errors, but stay safe): reset to uniform.
            let n = self.posterior.len() as f64;
            self.posterior.fill(1.0 / n);
        } else {
            for ((q, p), psi) in self
                .posterior
                .iter_mut()
                .zip(self.prior.iter())
                .zip(psi.iter())
            {
                *q = p * psi / sum;
            }
        }
    }

    /// The prior-roll core (the tail of Eq. 5 after an observation) plus
    /// the prune-order refresh, shared with the batch kernel. As in
    /// [`Self::advance_with`], the prior is Eq. 5's output buffer.
    pub fn roll_prior_with(&mut self, stats: &TransitionStats) {
        stats.advance(self.posterior, self.prior);
        self.resort();
    }

    /// The full labeled-record lifecycle: [`Self::absorb`] then the
    /// prior roll against `model`'s χ.
    pub fn observe(&mut self, model: &HighOrderModel, x: &[f64], y: ClassId, psi: &mut [f64]) {
        self.absorb(model, x, y, psi);
        self.check(model);
        self.roll_prior_with(model.stats());
    }

    /// Re-sort the §III-C enumeration order by descending prior.
    pub fn resort(&mut self) {
        let prior = &self.prior;
        self.order
            .sort_unstable_by(|&a, &b| prior[b as usize].total_cmp(&prior[a as usize]));
    }

    /// Class-probability prediction for an unlabeled record (Eq. 10):
    /// `Highorder(l|x) = Σ_c Pₜ⁻(c)·M_c(l|x)`. `classes` is class-sized
    /// scratch for the per-concept rows.
    pub fn predict_proba(
        &self,
        model: &HighOrderModel,
        x: &[f64],
        out: &mut [f64],
        classes: &mut [f64],
    ) {
        self.check(model);
        out.fill(0.0);
        for (c, &p) in model.concepts().iter().zip(self.prior.iter()) {
            if p == 0.0 {
                continue;
            }
            c.model.predict_proba(x, classes);
            for (o, &v) in out.iter_mut().zip(classes.iter()) {
                *o += p * v;
            }
        }
    }

    /// Unique-class prediction (Eq. 11): the argmax of Eq. 10.
    pub fn predict(&self, model: &HighOrderModel, x: &[f64], classes: &mut [f64]) -> ClassId {
        let mut out = vec![0.0; model.schema().n_classes()];
        self.predict_proba(model, x, &mut out, classes);
        argmax(&out) as ClassId
    }

    /// The §III-C early-terminated enumeration; returns the prediction and
    /// how many concept classifiers were consulted before the margin test
    /// terminated it. Identical to [`Self::predict`] in result, usually
    /// much cheaper.
    pub fn predict_pruned(
        &self,
        model: &HighOrderModel,
        x: &[f64],
        classes: &mut [f64],
    ) -> (ClassId, usize) {
        self.check(model);
        let n_classes = model.schema().n_classes();
        let mut scores = vec![0.0; n_classes];
        // Remaining probability mass after each prefix of the enumeration.
        let mut remaining: f64 = self.prior.iter().sum();
        for (rank, &ci) in self.order.iter().enumerate() {
            let p = self.prior[ci as usize];
            remaining -= p;
            if p > 0.0 {
                model.concepts()[ci as usize]
                    .model
                    .predict_proba(x, classes);
                for (s, &v) in scores.iter_mut().zip(classes.iter()) {
                    *s += p * v;
                }
            }
            // A remaining concept can add at most `remaining` to any one
            // class; if the leader's margin exceeds that, the answer is
            // decided (§III-C).
            let (best, best_v, runner_up) = leader_and_runner_up(&scores);
            if best_v - runner_up > remaining {
                return (best as ClassId, rank + 1);
            }
        }
        (argmax(&scores) as ClassId, self.order.len())
    }
}

/// The §III-C margin-test operands in one pass over the score vector:
/// the leading class (same index as [`argmax`] — strict `>`, ties toward
/// the lower index), its score, and the best score among the *other*
/// classes. Equivalent to `argmax` followed by a max over the remaining
/// entries — it runs once per enumerated concept, so the fused form
/// matters on the serving hot path.
#[inline]
pub(crate) fn leader_and_runner_up(scores: &[f64]) -> (usize, f64, f64) {
    let mut best = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    let mut runner_up = f64::NEG_INFINITY;
    for (i, &v) in scores.iter().enumerate() {
        if v > best_v {
            runner_up = best_v;
            best_v = v;
            best = i;
        } else if v > runner_up {
            // Covers ties with the leader too: a score equal to `best_v`
            // at a higher index is one of the "other" classes and is
            // exactly what the runner-up max would have picked.
            runner_up = v;
        }
    }
    (best, best_v, runner_up)
}

/// A point-in-time copy of one stream's observable filter quantities —
/// the payload of [`FilterState::introspect`]. Everything the paper
/// treats as the filter's running evidence in one owned struct: the
/// Eq. 7–9 distributions, the §III-C prune order, and the novelty
/// signals `hom-adapt` windows (marginal likelihood, normalized
/// posterior entropy).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterIntrospection {
    /// Posterior `P_{t-1}(c)` after the last observed label.
    pub posterior: Vec<f64>,
    /// Prior `Pₜ⁻(c)` for the current timestamp.
    pub prior: Vec<f64>,
    /// Concept ids in descending order of active probability (the
    /// §III-C pruned-prediction enumeration order).
    pub order: Vec<u32>,
    /// The most likely current concept (argmax of the prior).
    pub current_concept: usize,
    /// Marginal likelihood of the last absorbed label (Eq. 7
    /// normalizer); `1.0` until a label is absorbed.
    pub last_likelihood: f64,
    /// Posterior Shannon entropy normalized to `[0, 1]`.
    pub posterior_entropy: f64,
}

/// The distribution-level core of [`FilterState::migrate`], shared with
/// the snapshot codec's migration-aware restore (which has parts but no
/// old-model `FilterState` to call the method on).
pub(crate) fn migrate_parts(
    model: &HighOrderModel,
    posterior: &[f64],
    prior: &[f64],
    order: &[u32],
) -> FilterState {
    let n_old = posterior.len();
    let n_new = model.n_concepts();
    assert!(
        n_new >= n_old,
        "cannot migrate a {n_old}-concept state into a {n_new}-concept model"
    );
    if n_new == n_old {
        return FilterState::from_parts(model, posterior.to_vec(), prior.to_vec(), order.to_vec());
    }
    let added: f64 = (n_old..n_new).map(|j| model.stats().freq(j)).sum();
    // Admitted concepts always have at least one occurrence, so
    // `added` is in (0, 1) and the old concepts keep positive mass.
    let keep = (1.0 - added).max(0.0);
    let extend = |p: &[f64]| -> Vec<f64> {
        let mut out: Vec<f64> = p.iter().map(|&v| v * keep).collect();
        out.extend((n_old..n_new).map(|j| model.stats().freq(j)));
        let sum: f64 = out.iter().sum();
        if sum > 0.0 {
            for v in &mut out {
                *v /= sum;
            }
        }
        out
    };
    let posterior = extend(posterior);
    let prior = extend(prior);
    // Rebuild the §III-C enumeration order over the grown space with
    // a deterministic tie-break (descending prior, then id).
    let mut order: Vec<u32> = (0..n_new as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        prior[b as usize]
            .total_cmp(&prior[a as usize])
            .then(a.cmp(&b))
    });
    FilterState::from_parts(model, posterior, prior, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionStats;
    use crate::Concept;
    use hom_classifiers::MajorityClassifier;
    use hom_data::{Attribute, Schema};
    use std::sync::Arc;

    fn toy_model() -> HighOrderModel {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 0])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
            Concept {
                id: 1,
                model: Arc::new(MajorityClassifier::from_counts(&[0, 10])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 100), (1, 100)]);
        HighOrderModel::from_parts(schema, concepts, stats)
    }

    #[test]
    fn starts_uniform_and_concentrates() {
        let m = toy_model();
        let mut s = FilterState::new(&m);
        assert_eq!(s.prior(), &[0.5, 0.5]);
        for _ in 0..20 {
            s.observe(&m, &[0.0], 1);
        }
        assert_eq!(s.current_concept(), 1);
        assert!(s.posterior()[1] > 0.9);
        assert_eq!(s.predict(&m, &[0.0]), 1);
        assert_eq!(s.predict_pruned(&m, &[0.0]).0, 1);
    }

    #[test]
    fn clone_is_independent() {
        let m = toy_model();
        let mut a = FilterState::new(&m);
        for _ in 0..5 {
            a.observe(&m, &[0.0], 0);
        }
        let mut b = a.clone();
        b.observe(&m, &[0.0], 1);
        // the original is untouched by the clone's update
        assert_ne!(a.posterior()[0].to_bits(), b.posterior()[0].to_bits());
        let sum: f64 = a.posterior().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_then_roll_equals_observe() {
        let m = toy_model();
        let mut a = FilterState::new(&m);
        let mut b = FilterState::new(&m);
        for t in 0..30u32 {
            let y = t % 2;
            a.observe(&m, &[0.0], y);
            b.absorb(&m, &[0.0], y);
            b.roll_prior(&m);
            assert_eq!(a.posterior(), b.posterior());
            assert_eq!(a.prior(), b.prior());
            assert_eq!(a.order(), b.order());
        }
    }

    #[test]
    fn evidence_tracks_model_fit() {
        let m = toy_model();
        let mut s = FilterState::new(&m);
        assert_eq!(s.last_likelihood(), 1.0, "no label absorbed yet");
        // Labels concept 1's model explains: likelihood near 1 − err,
        // entropy collapsing toward 0.
        for _ in 0..20 {
            s.observe(&m, &[0.0], 1);
        }
        assert!(s.last_likelihood() > 0.85, "lik = {}", s.last_likelihood());
        assert!(s.posterior_entropy() < 0.1, "H = {}", s.posterior_entropy());
        assert_eq!(s.last_psi(), &[0.1, 0.9]);
        // A label neither constant classifier can track for long: the
        // likelihood of each single surprise collapses to ~err.
        s.observe(&m, &[0.0], 0);
        assert!(s.last_likelihood() < 0.3, "lik = {}", s.last_likelihood());
    }

    #[test]
    fn migrate_same_size_preserves_bits() {
        let m = toy_model();
        let mut s = FilterState::new(&m);
        for t in 0..15u32 {
            s.observe(&m, &[0.0], t % 2);
        }
        // a stats-only rebuild: same concepts, new occurrence totals
        let rebuilt = m.record_occurrence(0, 50);
        let migrated = s.migrate(&rebuilt);
        let bits = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(migrated.posterior()), bits(s.posterior()));
        assert_eq!(bits(migrated.prior()), bits(s.prior()));
        assert_eq!(migrated.order(), s.order());
    }

    #[test]
    fn migrate_extends_with_stationary_frequency() {
        use hom_classifiers::MajorityClassifier;
        let m = toy_model();
        let mut s = FilterState::new(&m);
        for _ in 0..20 {
            s.observe(&m, &[0.0], 1);
        }
        let grown = m.admit_concept(Arc::new(MajorityClassifier::from_counts(&[5, 5])), 0.2, 100);
        let migrated = s.migrate(&grown);
        assert_eq!(migrated.n_concepts(), 3);
        // freq_2 = 1/3 of occurrences: the new concept gets that mass
        let f = grown.stats().freq(2);
        assert!((migrated.posterior()[2] - f).abs() < 1e-12);
        // old concepts keep their relative weights
        let old_ratio = s.posterior()[1] / s.posterior()[0];
        let new_ratio = migrated.posterior()[1] / migrated.posterior()[0];
        assert!((old_ratio - new_ratio).abs() < 1e-6);
        // both distributions are normalized and the order is a
        // descending-prior permutation
        for p in [migrated.posterior(), migrated.prior()] {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        for w in migrated.order().windows(2) {
            assert!(
                migrated.prior()[w[0] as usize] >= migrated.prior()[w[1] as usize],
                "order not descending"
            );
        }
        // and the migrated state is usable against the new model
        let mut migrated = migrated;
        migrated.observe(&grown, &[0.0], 1);
        let sum: f64 = migrated.posterior().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot migrate")]
    fn migrate_rejects_shrinking() {
        let m = toy_model();
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let one = HighOrderModel::from_parts(
            schema,
            vec![Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[1, 0])),
                err: 0.1,
                n_records: 1,
                n_occurrences: 1,
            }],
            TransitionStats::from_occurrences(1, &[(0, 10)]),
        );
        FilterState::new(&m).migrate(&one);
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn rejects_wrong_model() {
        let m = toy_model();
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let one = HighOrderModel::from_parts(
            schema,
            vec![Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[1, 0])),
                err: 0.1,
                n_records: 1,
                n_occurrences: 1,
            }],
            TransitionStats::from_occurrences(1, &[(0, 10)]),
        );
        let mut s = FilterState::new(&m);
        s.advance(&one);
    }
}
