//! The versioned **model** wire codec: a [`HighOrderModel`] as bytes,
//! for distributing one mined model to every node of a serving cluster.
//!
//! Where the snapshot codec ([`crate::snapshot`]) ships one *stream's*
//! filter state, this codec ships the *model itself* — schema, every
//! concept (its `Err_c`, occurrence totals and classifier) and the raw
//! transition kernel — so `hom-cluster-serve`'s two-phase hot-swap can
//! stage an identical model on every worker before any worker flips its
//! epoch. The design goal is the same **bit-identity** bar: a decoded
//! model must serve (predictions *and* posteriors) bit-identically to
//! the encoded one, which holds because
//!
//! * classifiers go through `hom-classifiers`' wire layer, whose
//!   contract is bit-identical `predict`/`predict_proba`
//!   ([`hom_classifiers::Classifier::wire_encode`]);
//! * `Err_c` (ψ, Eq. 8) and the raw `Len`/`Freq`/`χ` vectors (Eq. 6,
//!   driving the Eq. 5 prior advance) are shipped as raw f64 **bits**,
//!   not re-derived from totals on the far side.
//!
//! ## Wire format (version 1, little-endian)
//!
//! | bytes | field |
//! |---|---|
//! | 4 | magic `HOMM` |
//! | 2 | format version (1) |
//! | 4 | model epoch (the serving epoch this distribution targets) |
//! | var | schema: attribute list (name, kind, categorical values) + class names |
//! | 4 | `n_concepts` |
//! | var | per concept: `Err_c` (f64 bits) · `n_records` · `n_occurrences` · classifier blob |
//! | 8·n | `Len` (f64 bits each) |
//! | 8·n | `Freq` (f64 bits each) |
//! | 8·n² | `χ` row-major (f64 bits each) |
//! | 8 | FNV-1a checksum of everything above |
//!
//! Strings are `u32` length + UTF-8. Decoding validates structurally
//! (magic, version, checksum, string/count bounds, classifier structure
//! via the classifier wire layer) and returns a typed
//! [`ModelCodecError`] on anything malformed — corrupt bytes must never
//! panic a node. A model whose classifier has no wire form (naive
//! Bayes) is rejected at **encode** time with
//! [`ModelCodecError::UnsupportedClassifier`], so the failure surfaces
//! on the node that owns the model, not mid-swap on a worker.

use std::fmt;
use std::sync::Arc;

use hom_classifiers::wire::{decode_classifier, ClassifierWireError};
use hom_data::{Attribute, Schema};

use crate::build::HighOrderModel;
use crate::concept::Concept;
use crate::snapshot::fnv1a;
use crate::transition::TransitionStats;

/// Magic prefix of every encoded model.
pub const MODEL_MAGIC: [u8; 4] = *b"HOMM";
/// Current model wire-format version.
pub const MODEL_VERSION: u16 = 1;

/// Why model bytes failed to encode or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Input ended before the encoded structure did.
    Truncated,
    /// The first four bytes are not `HOMM`.
    BadMagic,
    /// A version this build does not understand.
    UnsupportedVersion(u16),
    /// The FNV-1a trailer does not match the payload.
    ChecksumMismatch,
    /// Structurally invalid payload (bad counts, out-of-range index,
    /// invalid UTF-8, malformed classifier, …).
    Corrupt(&'static str),
    /// Encode-side: concept `concept`'s classifier has no wire form
    /// (e.g. naive Bayes) — the model cannot be distributed.
    UnsupportedClassifier {
        /// Index of the offending concept.
        concept: usize,
    },
}

impl fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelCodecError::Truncated => write!(f, "model bytes truncated"),
            ModelCodecError::BadMagic => write!(f, "not a HOMM model (bad magic)"),
            ModelCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
            ModelCodecError::ChecksumMismatch => write!(f, "model checksum mismatch"),
            ModelCodecError::Corrupt(why) => write!(f, "corrupt model bytes: {why}"),
            ModelCodecError::UnsupportedClassifier { concept } => write!(
                f,
                "concept {concept}'s classifier has no wire form and cannot be distributed"
            ),
        }
    }
}

impl std::error::Error for ModelCodecError {}

impl From<ClassifierWireError> for ModelCodecError {
    fn from(e: ClassifierWireError) -> Self {
        match e {
            ClassifierWireError::Truncated => ModelCodecError::Truncated,
            ClassifierWireError::Corrupt(why) => ModelCodecError::Corrupt(why),
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], ModelCodecError> {
    let end = at.checked_add(n).ok_or(ModelCodecError::Truncated)?;
    let chunk = bytes.get(*at..end).ok_or(ModelCodecError::Truncated)?;
    *at = end;
    Ok(chunk)
}

fn take_u16(bytes: &[u8], at: &mut usize) -> Result<u16, ModelCodecError> {
    Ok(u16::from_le_bytes(take(bytes, at, 2)?.try_into().unwrap()))
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, ModelCodecError> {
    Ok(u32::from_le_bytes(take(bytes, at, 4)?.try_into().unwrap()))
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, ModelCodecError> {
    Ok(u64::from_le_bytes(take(bytes, at, 8)?.try_into().unwrap()))
}

fn take_f64(bytes: &[u8], at: &mut usize) -> Result<f64, ModelCodecError> {
    Ok(f64::from_bits(take_u64(bytes, at)?))
}

fn take_str(bytes: &[u8], at: &mut usize) -> Result<String, ModelCodecError> {
    let len = take_u32(bytes, at)? as usize;
    let raw = take(bytes, at, len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| ModelCodecError::Corrupt("invalid UTF-8 string"))
}

/// Serialize `model` for distribution, stamping `epoch` (the serving
/// epoch the receiving workers will swap to — see
/// `hom-cluster-serve`'s two-phase swap). Fails with a typed error if
/// any concept's classifier has no wire form.
pub fn encode_model(model: &HighOrderModel, epoch: u32) -> Result<Vec<u8>, ModelCodecError> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&MODEL_MAGIC);
    put_u16(&mut out, MODEL_VERSION);
    put_u32(&mut out, epoch);

    let schema = model.schema();
    put_u32(&mut out, schema.n_attrs() as u32);
    for a in schema.attrs() {
        put_str(&mut out, &a.name);
        match a.cardinality() {
            None => out.push(0),
            Some(_) => {
                out.push(1);
                let values = match &a.kind {
                    hom_data::AttrKind::Categorical { values } => values,
                    hom_data::AttrKind::Numeric => unreachable!("cardinality was Some"),
                };
                put_u32(&mut out, values.len() as u32);
                for v in values {
                    put_str(&mut out, v);
                }
            }
        }
    }
    put_u32(&mut out, schema.n_classes() as u32);
    for c in schema.classes() {
        put_str(&mut out, c);
    }

    put_u32(&mut out, model.n_concepts() as u32);
    for (i, concept) in model.concepts().iter().enumerate() {
        put_f64(&mut out, concept.err);
        put_u64(&mut out, concept.n_records as u64);
        put_u64(&mut out, concept.n_occurrences as u64);
        if !concept.model.wire_encode(&mut out) {
            return Err(ModelCodecError::UnsupportedClassifier { concept: i });
        }
    }

    let (len, freq, chi) = model.stats().raw_parts();
    for &v in len.iter().chain(freq).chain(chi) {
        put_f64(&mut out, v);
    }

    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    Ok(out)
}

/// The epoch stamp of an encoded model, without decoding the rest.
/// `None` if the bytes are too short or not a HOMM blob.
pub fn model_epoch(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < 10 || bytes[..4] != MODEL_MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(bytes[6..10].try_into().ok()?))
}

/// Decode a model encoded by [`encode_model`], returning the model and
/// its epoch stamp. The decoded model serves bit-identically to the
/// encoded one (see the [module docs](self) for the argument). Any
/// malformed input — wrong magic, unknown version, checksum mismatch,
/// truncation, structural corruption — is a typed error, never a panic.
pub fn decode_model(bytes: &[u8]) -> Result<(Arc<HighOrderModel>, u32), ModelCodecError> {
    if bytes.len() < MODEL_MAGIC.len() + 2 + 4 + 8 {
        return Err(ModelCodecError::Truncated);
    }
    if bytes[..4] != MODEL_MAGIC {
        return Err(ModelCodecError::BadMagic);
    }
    let payload = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(ModelCodecError::ChecksumMismatch);
    }

    let at = &mut 4usize;
    let version = take_u16(payload, at)?;
    if version != MODEL_VERSION {
        return Err(ModelCodecError::UnsupportedVersion(version));
    }
    let epoch = take_u32(payload, at)?;

    let n_attrs = take_u32(payload, at)? as usize;
    if n_attrs == 0 {
        return Err(ModelCodecError::Corrupt("schema with no attributes"));
    }
    let mut attrs = Vec::new();
    for _ in 0..n_attrs {
        let name = take_str(payload, at)?;
        match take(payload, at, 1)?[0] {
            0 => attrs.push(Attribute::numeric(name)),
            1 => {
                let n_values = take_u32(payload, at)? as usize;
                if n_values == 0 {
                    return Err(ModelCodecError::Corrupt(
                        "categorical attribute with no values",
                    ));
                }
                let mut values = Vec::with_capacity(n_values.min(1024));
                for _ in 0..n_values {
                    values.push(take_str(payload, at)?);
                }
                attrs.push(Attribute::categorical(name, values));
            }
            _ => return Err(ModelCodecError::Corrupt("unknown attribute kind")),
        }
    }
    let n_classes = take_u32(payload, at)? as usize;
    if n_classes < 2 {
        return Err(ModelCodecError::Corrupt(
            "schema with fewer than two classes",
        ));
    }
    let mut classes = Vec::with_capacity(n_classes.min(1024));
    for _ in 0..n_classes {
        classes.push(take_str(payload, at)?);
    }
    let schema = Schema::new(attrs, classes);

    let n_concepts = take_u32(payload, at)? as usize;
    if n_concepts == 0 {
        return Err(ModelCodecError::Corrupt("model with no concepts"));
    }
    let mut concepts = Vec::with_capacity(n_concepts.min(1024));
    for id in 0..n_concepts {
        let err = take_f64(payload, at)?;
        let n_records = take_u64(payload, at)? as usize;
        let n_occurrences = take_u64(payload, at)? as usize;
        let classifier = decode_classifier(payload, at, &schema)?;
        if classifier.n_classes() != schema.n_classes() {
            return Err(ModelCodecError::Corrupt("classifier class count mismatch"));
        }
        concepts.push(Concept {
            id,
            model: classifier,
            err,
            n_records,
            n_occurrences,
        });
    }

    let mut len = Vec::with_capacity(n_concepts);
    for _ in 0..n_concepts {
        len.push(take_f64(payload, at)?);
    }
    let mut freq = Vec::with_capacity(n_concepts);
    for _ in 0..n_concepts {
        freq.push(take_f64(payload, at)?);
    }
    let mut chi = Vec::with_capacity(n_concepts * n_concepts);
    for _ in 0..n_concepts * n_concepts {
        chi.push(take_f64(payload, at)?);
    }
    if *at != payload.len() {
        return Err(ModelCodecError::Corrupt("trailing bytes after model"));
    }
    let stats = TransitionStats::from_raw_parts(n_concepts, len, freq, chi)
        .map_err(ModelCodecError::Corrupt)?;
    Ok((
        Arc::new(HighOrderModel::from_parts(schema, concepts, stats)),
        epoch,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::{HoeffdingParams, HoeffdingTree, MajorityClassifier};
    use hom_data::ClassId;

    fn schema() -> Arc<Schema> {
        Schema::new(
            vec![
                Attribute::categorical("c", ["p", "q", "r"]),
                Attribute::numeric("x"),
            ],
            ["neg", "pos"],
        )
    }

    fn trained_hoeffding(schema: &Arc<Schema>) -> HoeffdingTree {
        let mut t = HoeffdingTree::new(Arc::clone(schema), HoeffdingParams::default());
        let mut state = 17u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = ((state >> 33) % 3) as f64;
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            t.update(&[c, x], u32::from(c == 1.0));
        }
        t
    }

    fn model() -> Arc<HighOrderModel> {
        let schema = schema();
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 3])),
                err: 0.05,
                n_records: 100,
                n_occurrences: 2,
            },
            Concept {
                id: 1,
                model: Arc::new(trained_hoeffding(&schema)),
                err: 0.125,
                n_records: 60,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 50), (1, 60), (0, 50)]);
        Arc::new(HighOrderModel::from_parts(schema, concepts, stats))
    }

    /// Probes covering vocabulary, fallback, fractional, negative, NaN.
    fn probes() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.2],
            vec![1.0, 0.8],
            vec![2.0, 0.5],
            vec![7.0, 0.5],
            vec![0.5, 0.3],
            vec![-2.0, 0.3],
            vec![1.0, f64::NAN],
        ]
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let m = model();
        let bytes = encode_model(&m, 3).expect("encodes");
        assert_eq!(model_epoch(&bytes), Some(3));
        let (back, epoch) = decode_model(&bytes).expect("decodes");
        assert_eq!(epoch, 3);

        assert_eq!(back.schema(), m.schema());
        assert_eq!(back.n_concepts(), m.n_concepts());
        for (a, b) in m.concepts().iter().zip(back.concepts()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.err.to_bits(), b.err.to_bits());
            assert_eq!(a.n_records, b.n_records);
            assert_eq!(a.n_occurrences, b.n_occurrences);
            let mut pa = vec![0.0; 2];
            let mut pb = vec![0.0; 2];
            for x in probes() {
                assert_eq!(a.model.predict(&x), b.model.predict(&x));
                a.model.predict_proba(&x, &mut pa);
                b.model.predict_proba(&x, &mut pb);
                let bits = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
                assert_eq!(bits(&pa), bits(&pb));
            }
            for (x, y) in [(probes()[0].clone(), 0u32), (probes()[1].clone(), 1u32)] {
                assert_eq!(
                    a.psi(&x, y as ClassId).to_bits(),
                    b.psi(&x, y as ClassId).to_bits()
                );
            }
        }
        let (sa, sb) = (m.stats(), back.stats());
        for i in 0..m.n_concepts() {
            assert_eq!(sa.len(i).to_bits(), sb.len(i).to_bits());
            assert_eq!(sa.freq(i).to_bits(), sb.freq(i).to_bits());
            for j in 0..m.n_concepts() {
                assert_eq!(sa.chi(i, j).to_bits(), sb.chi(i, j).to_bits());
            }
        }
    }

    #[test]
    fn filter_over_decoded_model_is_bit_identical() {
        let m = model();
        let (back, _) = decode_model(&encode_model(&m, 0).expect("encodes")).expect("decodes");
        let mut a = crate::FilterState::new(&m);
        let mut b = crate::FilterState::new(&back);
        let mut state = 23u64;
        for t in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = vec![
                ((state >> 33) % 4) as f64,
                (state >> 11) as f64 / (1u64 << 53) as f64,
            ];
            let y = (t % 2) as ClassId;
            assert_eq!(
                a.predict(&m, &x),
                b.predict(&back, &x),
                "prediction diverged at {t}"
            );
            a.observe(&m, &x, y);
            b.observe(&back, &x, y);
            let bits = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
            assert_eq!(
                bits(a.posterior()),
                bits(b.posterior()),
                "posterior diverged at {t}"
            );
        }
    }

    #[test]
    fn naive_bayes_model_is_rejected_at_encode_time() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = hom_data::Dataset::new(Arc::clone(&schema));
        for i in 0..40 {
            d.push(&[i as f64], u32::from(i >= 20));
        }
        use hom_classifiers::Learner;
        let nb: Arc<dyn hom_classifiers::Classifier> =
            Arc::from(hom_classifiers::NaiveBayesLearner.fit(&d));
        let m = HighOrderModel::from_parts(
            schema,
            vec![Concept {
                id: 0,
                model: nb,
                err: 0.1,
                n_records: 40,
                n_occurrences: 1,
            }],
            TransitionStats::from_occurrences(1, &[(0, 40)]),
        );
        assert_eq!(
            encode_model(&m, 0).err(),
            Some(ModelCodecError::UnsupportedClassifier { concept: 0 })
        );
    }

    #[test]
    fn truncation_battery_every_prefix_errors() {
        let bytes = encode_model(&model(), 1).expect("encodes");
        for cut in 0..bytes.len() {
            assert!(
                decode_model(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn bit_flip_battery_every_flip_errors_or_roundtrips() {
        // Any single bit flip must be *detected* (checksum) — except a
        // flip inside the checksum trailer itself, which also errors.
        let bytes = encode_model(&model(), 1).expect("encodes");
        let stride = (bytes.len() / 97).max(1);
        for i in (0..bytes.len()).step_by(stride) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x10;
            assert!(
                decode_model(&corrupted).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let bytes = encode_model(&model(), 0).expect("encodes");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_model(&bad).err(), Some(ModelCodecError::BadMagic));

        let mut versioned = bytes.clone();
        versioned[4] = 99;
        // re-stamp the checksum so the version check is what fires
        let n = versioned.len();
        let sum = fnv1a(&versioned[..n - 8]);
        versioned[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_model(&versioned).err(),
            Some(ModelCodecError::UnsupportedVersion(99))
        );
        assert!(decode_model(&[]).is_err());
    }
}
