//! A mined stable concept.

use std::sync::Arc;

use hom_classifiers::Classifier;

/// One stable concept of the high-order model: its classifier and the
/// statistics the online filter needs.
///
/// Cloning is cheap: the classifier is shared behind an [`Arc`], so the
/// incremental model-extension path ([`crate::HighOrderModel::admit_concept`]
/// / [`crate::HighOrderModel::record_occurrence`]) can assemble a new
/// model without retraining or copying any classifier.
#[derive(Clone)]
pub struct Concept {
    /// Dense id (index into [`crate::HighOrderModel`]'s concept list).
    pub id: usize,
    /// Classifier for this concept. By default trained on *all* records of
    /// the concept (every occurrence scattered across the stream) — the
    /// paper's key advantage over window-based methods.
    pub model: Arc<dyn Classifier>,
    /// Holdout-validated error rate `Err_c`, used by `ψ` (Eq. 8). Clamped
    /// away from exactly 0/1 so `ψ` never annihilates a concept's
    /// probability on a single lucky or noisy record.
    pub err: f64,
    /// Total records of this concept in the historical stream.
    pub n_records: usize,
    /// Number of occurrences (maximal runs) in the historical stream.
    pub n_occurrences: usize,
}

impl Concept {
    /// `ψ(c, yₜ)` (Eq. 8): the likelihood proxy for a labeled record —
    /// `1 − Err_c` if this concept's model classifies it correctly,
    /// `Err_c` otherwise.
    pub fn psi(&self, x: &[f64], y: u32) -> f64 {
        if self.model.predict(x) == y {
            1.0 - self.err
        } else {
            self.err
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::MajorityClassifier;

    fn concept(err: f64) -> Concept {
        Concept {
            id: 0,
            // always predicts class 1 (counts favor class 1)
            model: Arc::new(MajorityClassifier::from_counts(&[1, 3])),
            err,
            n_records: 4,
            n_occurrences: 1,
        }
    }

    #[test]
    fn psi_rewards_correct_prediction() {
        let c = concept(0.1);
        assert!((c.psi(&[0.0], 1) - 0.9).abs() < 1e-12);
        assert!((c.psi(&[0.0], 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn psi_is_symmetric_at_half_error() {
        let c = concept(0.5);
        assert_eq!(c.psi(&[0.0], 1), c.psi(&[0.0], 0));
    }
}
