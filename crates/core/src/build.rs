//! Offline construction of the high-order model (paper §II).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hom_classifiers::Learner;
use hom_cluster::{cluster_concepts_pooled, ClusterParams};
use hom_data::{Dataset, IndexView, Schema};
use hom_obs::Obs;
use hom_parallel::Pool;

use crate::concept::Concept;
use crate::transition::TransitionStats;

/// `Err_c` is clamped to this range before use in `ψ` (Eq. 8) so a concept
/// with a perfect holdout score cannot annihilate the others' probability
/// on a single record, and vice versa.
pub(crate) const ERR_CLAMP: (f64, f64) = (0.005, 0.995);

/// Parameters of the offline build.
#[derive(Debug, Clone, Default)]
pub struct BuildParams {
    /// Concept-clustering parameters (block size, early stop, seed, …).
    pub cluster: ClusterParams,
    /// Retrain each concept's classifier on *all* of its records after
    /// clustering (instead of keeping the model fitted on the training
    /// half only). On by default: using every record of a concept is the
    /// stated advantage of the approach ("we are the only approach that
    /// manages to use all data scattered in the stream but pertaining to a
    /// unique concept"). The holdout `Err_c` from clustering is kept as
    /// the (slightly pessimistic) error estimate either way.
    pub retrain_on_full: Option<bool>,
    /// Minimum support of a concept as a fraction of the historical data
    /// (default 0.01). Concepts below it — typically boundary chunks
    /// containing mixed records from around a concept change — are
    /// absorbed into the existing concept whose model agrees most with
    /// theirs (the paper's Eq. 4 similarity). `Some(0.0)` disables the
    /// pass, leaving exactly the clustering's cut.
    pub min_concept_support: Option<f64>,
}

impl BuildParams {
    fn retrain(&self) -> bool {
        self.retrain_on_full.unwrap_or(true)
    }

    fn min_support(&self) -> f64 {
        self.min_concept_support.unwrap_or(0.01)
    }
}

/// Execution options of the offline build — *how* to build, as opposed to
/// [`BuildParams`]' *what*. Options never change the resulting model:
/// [`build_with`] is bit-identical for every thread count and for any
/// sink (observability only measures).
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Worker threads for the parallel build stages (block fits, candidate
    /// fits, pairwise distances, concept retraining). `None` uses one
    /// worker per available core; `Some(1)` is the serial reference path.
    pub threads: Option<usize>,
    /// Observability sink the build (and the clustering it runs) emits
    /// spans, counters and gauges to. The default comes from
    /// [`Obs::from_env`]: disabled unless `HOM_TRACE=path.jsonl` is set.
    pub sink: Obs,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: None,
            sink: Obs::from_env(),
        }
    }
}

/// The mined high-order model: concepts, their classifiers, and the
/// concept-change statistics. Immutable once built; share it via
/// [`Arc`] across any number of [`crate::OnlinePredictor`]s.
pub struct HighOrderModel {
    pub(crate) schema: Arc<Schema>,
    pub(crate) concepts: Vec<Concept>,
    pub(crate) stats: TransitionStats,
}

impl HighOrderModel {
    /// Assemble a model from explicitly constructed parts. [`build`] is
    /// the normal entry point; this constructor supports hand-built
    /// models in tests and in applications that mine concepts by other
    /// means but want the online filter.
    ///
    /// # Panics
    /// Panics if there are no concepts or the statistics disagree with the
    /// concept count.
    pub fn from_parts(schema: Arc<Schema>, concepts: Vec<Concept>, stats: TransitionStats) -> Self {
        assert!(!concepts.is_empty(), "a model needs at least one concept");
        assert_eq!(
            concepts.len(),
            stats.n_concepts(),
            "transition stats must cover every concept"
        );
        HighOrderModel {
            schema,
            concepts,
            stats,
        }
    }

    /// Schema of the records this model classifies.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The mined concepts.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Number of mined concepts.
    pub fn n_concepts(&self) -> usize {
        self.concepts.len()
    }

    /// The concept-change statistics (Len, Freq, χ).
    pub fn stats(&self) -> &TransitionStats {
        &self.stats
    }
}

/// Diagnostics of a build (feeds Table IV and Fig. 4).
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Wall-clock time of the whole build.
    pub build_time: Duration,
    /// Number of chunks step 1 produced.
    pub n_chunks: usize,
    /// Number of concepts after step 2's cut.
    pub n_concepts: usize,
    /// Mergers performed in (step 1, step 2).
    pub mergers: (usize, usize),
    /// The concept occurrence sequence `(concept, length)` in stream
    /// order, after coalescing adjacent same-concept chunks.
    pub occurrences: Vec<(usize, usize)>,
}

/// Mine a high-order model from a historical labeled dataset, using one
/// worker thread per available core.
///
/// # Panics
/// Propagates the clustering preconditions: at least two blocks of data.
pub fn build(
    data: &Dataset,
    learner: &dyn Learner,
    params: &BuildParams,
) -> (HighOrderModel, BuildReport) {
    build_with(data, learner, params, &BuildOptions::default())
}

/// [`build`] with explicit execution options. The returned model is
/// bit-identical for every `options.threads` value; only wall-clock time
/// changes.
///
/// # Panics
/// Propagates the clustering preconditions: at least two blocks of data.
pub fn build_with(
    data: &Dataset,
    learner: &dyn Learner,
    params: &BuildParams,
    options: &BuildOptions,
) -> (HighOrderModel, BuildReport) {
    let start = Instant::now();
    let obs = options.sink.clone();
    let build_span = obs.span("build");
    obs.count("build.records", data.len() as u64);
    let pool = Pool::with_obs(options.threads, obs.clone());

    let cluster_span = obs.span("build.cluster");
    let mut clustering = cluster_concepts_pooled(data, learner, &params.cluster, &pool);
    drop(cluster_span);

    let absorb_span = obs.span("build.absorb");
    let concepts_before_absorb = clustering.concepts.len();
    absorb_small_concepts(data, &mut clustering, params.min_support());
    obs.count(
        "build.concepts_absorbed",
        (concepts_before_absorb - clustering.concepts.len()) as u64,
    );
    drop(absorb_span);

    let stats_span = obs.span("build.stats");
    // Coalesce adjacent same-concept chunks into occurrences: a concept
    // occurrence is a maximal run of records of one concept (§II-A), and
    // step 1 may legitimately split one occurrence into several chunks.
    let mut occurrences: Vec<(usize, usize)> = Vec::new();
    for (chunk, &concept) in clustering.chunk_concept.iter().enumerate() {
        let (s, e) = clustering.chunk_bounds[chunk];
        match occurrences.last_mut() {
            Some((c, len)) if *c == concept => *len += e - s,
            _ => occurrences.push((concept, e - s)),
        }
    }

    let n_concepts = clustering.concepts.len();
    let stats = TransitionStats::from_occurrences(n_concepts, &occurrences);
    obs.count("build.occurrences", occurrences.len() as u64);
    if obs.enabled() {
        // One row of the transition kernel χ (Eq. 6) per concept, so a
        // trace carries the full matrix the online filter will run on.
        for c in 0..n_concepts {
            let row: Vec<f64> = (0..n_concepts).map(|d| stats.chi(c, d)).collect();
            obs.series("build.transition_row", c as u64, &row);
        }
    }
    drop(stats_span);

    // Retraining each concept on its full record set is an independent
    // per-concept fit — the build's last parallel stage.
    let retrain_span = obs.span("build.retrain");
    let concepts: Vec<Concept> = pool.map_slice(&clustering.concepts, |id, c| {
        let n_occurrences = occurrences.iter().filter(|&&(oc, _)| oc == id).count();
        let model = if params.retrain() {
            Arc::from(learner.fit(&IndexView::new(data, &c.indices)))
        } else {
            Arc::clone(&c.model)
        };
        Concept {
            id,
            model,
            err: c.err.clamp(ERR_CLAMP.0, ERR_CLAMP.1),
            n_records: c.indices.len(),
            n_occurrences,
        }
    });
    obs.count(
        "build.concepts_retrained",
        if params.retrain() {
            n_concepts as u64
        } else {
            0
        },
    );
    drop(retrain_span);
    drop(build_span);

    let report = BuildReport {
        build_time: start.elapsed(),
        n_chunks: clustering.chunk_bounds.len(),
        n_concepts,
        mergers: clustering.mergers,
        occurrences,
    };
    let model = HighOrderModel {
        schema: Arc::clone(data.schema()),
        concepts,
        stats,
    };
    (model, report)
}

/// Merge every concept whose support is below `min_support · |data|`
/// into the larger concept whose model most agrees with its own on its
/// records (Eq. 4 similarity). Mutates the clustering in place, compacts
/// concept ids, and keeps `chunk_concept` consistent.
fn absorb_small_concepts(
    data: &Dataset,
    clustering: &mut hom_cluster::ClusteringResult,
    min_support: f64,
) {
    let threshold = (min_support * data.len() as f64) as usize;
    if threshold == 0 {
        return;
    }
    let big: Vec<usize> = (0..clustering.concepts.len())
        .filter(|&i| clustering.concepts[i].indices.len() >= threshold)
        .collect();
    // Nothing to absorb, or nothing to absorb *into*.
    if big.len() == clustering.concepts.len() || big.is_empty() {
        return;
    }

    // Destination of each old concept id.
    let mut target: Vec<usize> = (0..clustering.concepts.len()).collect();
    for (small, slot) in target.iter_mut().enumerate() {
        if clustering.concepts[small].indices.len() >= threshold {
            continue;
        }
        // Agreement of each big concept's model with the small one's on
        // the small concept's own records.
        let small_model = &clustering.concepts[small].model;
        let indices = &clustering.concepts[small].indices;
        let best = big
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let agree = |j: usize| {
                    indices
                        .iter()
                        .filter(|&&i| {
                            let row = data.row(i as usize);
                            clustering.concepts[j].model.predict(row) == small_model.predict(row)
                        })
                        .count()
                };
                agree(a).cmp(&agree(b))
            })
            .expect("big is non-empty");
        *slot = best;
    }

    // Compact ids: big concepts keep their order; small ones map through.
    let mut new_id = vec![usize::MAX; clustering.concepts.len()];
    for (rank, &b) in big.iter().enumerate() {
        new_id[b] = rank;
    }
    for chunk_c in clustering.chunk_concept.iter_mut() {
        *chunk_c = new_id[target[*chunk_c]];
    }

    // Rebuild the concept list: move the survivors out, then append the
    // absorbed concepts' data to their destinations.
    let old: Vec<hom_cluster::DiscoveredConcept> = std::mem::take(&mut clustering.concepts);
    let mut merged: Vec<Option<hom_cluster::DiscoveredConcept>> =
        old.into_iter().map(Some).collect();
    let mut survivors: Vec<hom_cluster::DiscoveredConcept> = big
        .iter()
        .map(|&b| merged[b].take().expect("big ids are distinct"))
        .collect();
    for (small, dest) in target.iter().enumerate() {
        if let Some(absorbed) = merged[small].take() {
            let s = &mut survivors[new_id[*dest]];
            s.indices.extend_from_slice(&absorbed.indices);
            s.train_idx.extend_from_slice(&absorbed.train_idx);
            s.test_idx.extend_from_slice(&absorbed.test_idx);
            s.chunks.extend_from_slice(&absorbed.chunks);
            s.chunks.sort_unstable();
        }
    }
    clustering.concepts = survivors;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::DecisionTreeLearner;
    use hom_data::stream::collect;
    use hom_datagen::{StaggerParams, StaggerSource};

    fn stagger_model(n: usize, lambda: f64) -> (HighOrderModel, BuildReport) {
        let mut src = StaggerSource::new(StaggerParams {
            lambda,
            ..Default::default()
        });
        let (data, _) = collect(&mut src, n);
        build(
            &data,
            &DecisionTreeLearner::new(),
            &BuildParams {
                cluster: ClusterParams {
                    block_size: 10,
                    seed: 42,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn builds_stagger_model_with_three_concepts() {
        let (model, report) = stagger_model(4000, 0.01);
        assert_eq!(model.n_concepts(), 3, "report: {report:?}");
        assert_eq!(report.n_concepts, 3);
        assert!(report.n_chunks >= 3);
        assert!(!report.occurrences.is_empty());
        // occurrences tile the historical data
        let total: usize = report.occurrences.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 4000);
        // adjacent occurrences always differ in concept (coalescing)
        for w in report.occurrences.windows(2) {
            assert_ne!(w[0].0, w[1].0);
        }
        // stats agree with occurrences
        assert_eq!(model.stats().n_concepts(), 3);
        for c in model.concepts() {
            assert!(c.err >= ERR_CLAMP.0 && c.err <= ERR_CLAMP.1);
            assert!(c.n_records > 0);
            assert!(c.n_occurrences > 0);
        }
    }

    #[test]
    fn concept_models_classify_their_own_concept_well() {
        use hom_datagen::stagger::stagger_label;
        let (model, _) = stagger_model(4000, 0.01);
        // For each true concept, at least one mined concept model should
        // achieve near-zero error on fresh data from it.
        for true_concept in 0..3 {
            let mut rng = hom_data::rng::seeded(777);
            use rand::Rng;
            let mut best = f64::INFINITY;
            for concept in model.concepts() {
                let mut wrong = 0;
                for _ in 0..300 {
                    let x = [
                        f64::from(rng.gen_range(0..3u8)),
                        f64::from(rng.gen_range(0..3u8)),
                        f64::from(rng.gen_range(0..3u8)),
                    ];
                    let y = stagger_label(true_concept, x[0], x[1], x[2]);
                    if concept.model.predict(&x) != y {
                        wrong += 1;
                    }
                }
                best = best.min(wrong as f64 / 300.0);
            }
            assert!(
                best < 0.06,
                "no mined model matches true concept {true_concept} (best err {best})"
            );
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let (model, report) = stagger_model(3000, 0.02);
        let records: usize = model.concepts().iter().map(|c| c.n_records).sum();
        assert_eq!(records, 3000);
        let occ: usize = model.concepts().iter().map(|c| c.n_occurrences).sum();
        assert_eq!(occ, report.occurrences.len());
    }
}
