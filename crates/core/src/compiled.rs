//! The batch-vectorized filter hot path: a [`CompiledModel`] plus the
//! shared-record kernel it evaluates batches with.
//!
//! # Why a compiled form exists
//!
//! The scalar path re-walks the same [`HighOrderModel`] for every record
//! of every stream: each `ψ(c, yₜ)` (Eq. 8) is a virtual call into a
//! pointer-chasing tree, and each `M_c(l|x)` row (Eq. 10) is a Laplace
//! computation repeated per call. When a serving engine drives thousands
//! of streams over the *same* few distinct records per batch, almost all
//! of that work is redundant. Compiling the mined model once per model
//! epoch fixes both costs:
//!
//! * every tree classifier is flattened to a structure-of-arrays
//!   [`FlatTree`] (contiguous node arrays, branchless numeric descent,
//!   precomputed probability rows — see `hom_classifiers::flat`);
//! * the per-concept ψ outcomes `1 − Err_c` / `Err_c` (Eq. 8, with the
//!   build-time clamp already applied to `Err_c`) are laid out in two
//!   linear arrays indexed by concept;
//! * the transition kernel χ (Eq. 6) is carried as its row-major matrix,
//!   scanned linearly by the Eq. 5 advance.
//!
//! A batch then makes **one pass over the concept set**: for each
//! concept, every *distinct* record in the batch is pushed through the
//! flat tree exactly once ([`CompiledModel::evaluate`]), and the
//! per-stream updates afterwards are pure array arithmetic against the
//! resulting [`BatchTable`] — no classifier runs per stream.
//!
//! # Bit-identity contract
//!
//! Every kernel operation produces **bit-identical** `f64` state to its
//! scalar [`FilterState`](crate::FilterState) counterpart, because the
//! floating-point cores are the *same code*: all updates run through a
//! [`FilterView`] — the layout-independent borrow of one stream's
//! distributions — so [`CompiledModel::absorb`] fills ψ from its tables
//! and then calls the same `FilterView::absorb_psi` the scalar path ends
//! in; [`CompiledModel::roll_prior`] and [`CompiledModel::advance`] run
//! the view's χ-advance core against a clone of the model's
//! [`TransitionStats`]; and the prediction loops accumulate the same
//! per-concept rows in the same order. That is what lets `hom-serve`
//! switch the kernel on or off (and vary batch size, shard count, or
//! thread count) without changing a single output bit — the differential
//! suite in `hom-serve/tests` enforces this.
//!
//! Classifiers with no flat form (e.g. naive Bayes) fall back to dynamic
//! dispatch inside the same kernel, still amortized per distinct record.

use std::sync::Arc;

use hom_classifiers::{argmax, Classifier, FlatTree};
use hom_data::ClassId;

use crate::build::HighOrderModel;
use crate::filter::FilterView;
use crate::transition::TransitionStats;

/// How one concept's classifier is evaluated by the kernel.
enum ConceptEval {
    /// Flattened to a structure-of-arrays tree: branchless descent,
    /// probability rows read straight out of the node arena.
    Flat(FlatTree),
    /// No flat form; the kernel calls the trained model through the
    /// trait object (still once per distinct record, not per stream).
    Dyn(Arc<dyn Classifier>),
}

/// A [`HighOrderModel`] compiled into its flattened evaluation form.
///
/// Built once per model epoch ([`CompiledModel::compile`]) and shared
/// read-only by every serving thread; a hot-swap to a new model simply
/// compiles the new model and drops this one. Holds no per-stream state.
pub struct CompiledModel {
    n_concepts: usize,
    n_classes: usize,
    /// Per-concept evaluators, indexed by concept id.
    evals: Vec<ConceptEval>,
    /// `ψ(c, yₜ)` when concept `c`'s classifier predicts `yₜ` correctly:
    /// `1 − Err_c` (Eq. 8), precomputed per concept.
    hit: Vec<f64>,
    /// `ψ(c, yₜ)` on a miss: `Err_c` (Eq. 8).
    miss: Vec<f64>,
    /// The transition kernel χ (Eq. 6), row-major — a clone of the
    /// model's stats, so the Eq. 5 advance runs the identical matrix.
    stats: TransitionStats,
    /// How many concepts compiled to flat form (the rest are `Dyn`).
    n_flat: usize,
}

impl CompiledModel {
    /// Flatten `model` into its batch-evaluation form. Classifiers that
    /// support it ([`Classifier::flatten`]) become structure-of-arrays
    /// trees; the rest keep their trait object.
    pub fn compile(model: &HighOrderModel) -> Self {
        let n_concepts = model.n_concepts();
        let n_classes = model.schema().n_classes();
        let mut evals = Vec::with_capacity(n_concepts);
        let mut hit = Vec::with_capacity(n_concepts);
        let mut miss = Vec::with_capacity(n_concepts);
        let mut n_flat = 0;
        for concept in model.concepts() {
            evals.push(match concept.model.flatten() {
                Some(flat) => {
                    n_flat += 1;
                    ConceptEval::Flat(flat)
                }
                None => ConceptEval::Dyn(Arc::clone(&concept.model)),
            });
            // The same `1.0 - err` / `err` expressions `Concept::psi`
            // evaluates per record (Eq. 8), hoisted to compile time.
            hit.push(1.0 - concept.err);
            miss.push(concept.err);
        }
        CompiledModel {
            n_concepts,
            n_classes,
            evals,
            hit,
            miss,
            stats: model.stats().clone(),
            n_flat,
        }
    }

    /// Number of concepts in the compiled model.
    pub fn n_concepts(&self) -> usize {
        self.n_concepts
    }

    /// Number of classes the concept classifiers predict over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// How many concepts compiled to a flat tree (the remainder run
    /// through dynamic dispatch inside the kernel).
    pub fn n_flattened(&self) -> usize {
        self.n_flat
    }

    /// The concept-outer evaluation pass: push every distinct record of
    /// the batch through every concept's classifier exactly once,
    /// filling the table's `(record, concept)` node/class entries. This
    /// is where ψ's classifier work (Eq. 8) and the tree descents behind
    /// `M_c(l|x)` (Eq. 10) are amortized across all streams that share a
    /// record.
    pub fn evaluate(&self, table: &mut BatchTable<'_>) {
        let n = self.n_concepts;
        let n_records = table.xs.len();
        table.node.clear();
        table.node.resize(n_records * n, u32::MAX);
        table.class.clear();
        table.class.resize(n_records * n, u32::MAX);
        for (c, eval) in self.evals.iter().enumerate() {
            match eval {
                ConceptEval::Flat(tree) => {
                    for (r, &x) in table.xs.iter().enumerate() {
                        let node = tree.descend(x);
                        table.node[r * n + c] = node;
                        table.class[r * n + c] = tree.node_class(node);
                    }
                }
                ConceptEval::Dyn(model) => {
                    // A dyn predict is as costly as the scalar path's, so
                    // only records some request will absorb (ψ needs the
                    // predicted class) pay for it; prediction rows are
                    // computed lazily at use.
                    for (r, &x) in table.xs.iter().enumerate() {
                        if table.need_class[r] {
                            table.class[r * n + c] = model.predict(x);
                        }
                    }
                }
            }
        }
    }

    /// Concept `c`'s class-probability row `M_c(l|x)` (Eq. 10) for the
    /// interned record `rec` — a borrow from the flat tree's arena, or a
    /// lazy dyn evaluation into `dyn_row`.
    #[inline]
    fn row<'r>(
        &'r self,
        table: &'r BatchTable<'_>,
        rec: u32,
        c: usize,
        dyn_row: &'r mut [f64],
    ) -> &'r [f64] {
        match &self.evals[c] {
            ConceptEval::Flat(tree) => {
                tree.proba_row(table.node[rec as usize * self.n_concepts + c])
            }
            ConceptEval::Dyn(model) => {
                model.predict_proba(table.xs[rec as usize], dyn_row);
                dyn_row
            }
        }
    }

    #[inline]
    fn check(&self, f: &FilterView<'_>) {
        assert_eq!(
            f.posterior.len(),
            self.n_concepts,
            "FilterState used with a different model than it was created for"
        );
    }

    /// The full-ensemble prediction (Eqs. 10–11):
    /// `argmax_l Σ_c Pₜ⁻(c)·M_c(l|x)`, accumulated per concept id in the
    /// same order as the scalar `FilterView::predict`.
    pub fn predict(
        &self,
        f: &FilterView<'_>,
        table: &BatchTable<'_>,
        rec: u32,
        scratch: &mut KernelScratch,
    ) -> ClassId {
        self.check(f);
        let KernelScratch {
            scores, dyn_row, ..
        } = scratch;
        scores.clear();
        scores.resize(self.n_classes, 0.0);
        for (c, &p) in f.prior.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let row = self.row(table, rec, c, dyn_row);
            for (s, &v) in scores.iter_mut().zip(row.iter()) {
                *s += p * v;
            }
        }
        argmax(scores) as ClassId
    }

    /// The §III-C early-terminated prediction: enumerate concepts in
    /// descending prior order, stop once the leader's margin exceeds the
    /// remaining probability mass. Returns the prediction and how many
    /// concepts were consulted — the same pair, bit for bit, as the
    /// scalar `FilterView::predict_pruned`.
    pub fn predict_pruned(
        &self,
        f: &FilterView<'_>,
        table: &BatchTable<'_>,
        rec: u32,
        scratch: &mut KernelScratch,
    ) -> (ClassId, usize) {
        self.check(f);
        let KernelScratch {
            scores, dyn_row, ..
        } = scratch;
        scores.clear();
        scores.resize(self.n_classes, 0.0);
        let prior = &*f.prior;
        // Remaining probability mass after each prefix of the enumeration.
        let mut remaining: f64 = prior.iter().sum();
        let order = &*f.order;
        for (rank, &ci) in order.iter().enumerate() {
            let p = prior[ci as usize];
            remaining -= p;
            if p > 0.0 {
                let row = self.row(table, rec, ci as usize, dyn_row);
                for (s, &v) in scores.iter_mut().zip(row.iter()) {
                    *s += p * v;
                }
            }
            // A remaining concept can add at most `remaining` to any one
            // class; if the leader's margin exceeds that, the answer is
            // decided (§III-C). The fused scan is shared with the scalar
            // path (`filter::leader_and_runner_up`) so both stay
            // bit-identical by construction.
            let (best, best_v, runner_up) = crate::filter::leader_and_runner_up(scores);
            if best_v - runner_up > remaining {
                return (best as ClassId, rank + 1);
            }
        }
        (argmax(scores) as ClassId, order.len())
    }

    /// Absorb a labeled record (Eqs. 7–9): fill ψ from the precomputed
    /// hit/miss tables — `ψ(c, yₜ) = 1 − Err_c` when the table's
    /// predicted class for `(rec, c)` equals `y`, else `Err_c` (Eq. 8) —
    /// then run the shared posterior-normalization core
    /// (`FilterView::absorb_psi`).
    pub fn absorb(
        &self,
        f: &mut FilterView<'_>,
        table: &BatchTable<'_>,
        rec: u32,
        y: ClassId,
        scratch: &mut KernelScratch,
    ) {
        self.check(f);
        debug_assert!(
            table.need_class[rec as usize],
            "record was interned without need_class but is being absorbed"
        );
        let base = rec as usize * self.n_concepts;
        let classes = &table.class[base..base + self.n_concepts];
        for ((slot, &class), (&hit, &miss)) in scratch
            .psi
            .iter_mut()
            .zip(classes)
            .zip(self.hit.iter().zip(self.miss.iter()))
        {
            *slot = if class == y { hit } else { miss };
        }
        f.absorb_psi(&scratch.psi);
    }

    /// Roll the prior to the next timestamp after an absorb (the tail of
    /// Eq. 5) and refresh the §III-C prune order — the shared χ-advance
    /// core against the compiled kernel's χ clone.
    pub fn roll_prior(&self, f: &mut FilterView<'_>) {
        self.check(f);
        f.roll_prior_with(&self.stats);
    }

    /// Advance one timestamp without a label (Eq. 5), posterior
    /// defaulting to the prior — the batched form of
    /// `FilterView::advance`.
    pub fn advance(&self, f: &mut FilterView<'_>) {
        self.check(f);
        f.advance_with(&self.stats);
    }

    /// Advance `k` timestamps at once (the variable-rate adaptation of
    /// §III-B).
    pub fn advance_by(&self, f: &mut FilterView<'_>, k: usize) {
        for _ in 0..k {
            self.advance(f);
        }
    }

    /// The full labeled-record lifecycle against the table:
    /// [`Self::absorb`] then [`Self::roll_prior`] — the batched form of
    /// `FilterView::observe`.
    pub fn observe(
        &self,
        f: &mut FilterView<'_>,
        table: &BatchTable<'_>,
        rec: u32,
        y: ClassId,
        scratch: &mut KernelScratch,
    ) {
        self.absorb(f, table, rec, y, scratch);
        self.roll_prior(f);
    }
}

/// The per-batch table of distinct records and their per-concept
/// evaluation results.
///
/// Callers intern each request's record ([`BatchTable::intern`] —
/// duplicates collapse onto one slot), run one
/// [`CompiledModel::evaluate`] pass, then apply per-stream updates that
/// read the table. Borrows the records, so a table lives only as long as
/// the batch it was built from.
pub struct BatchTable<'a> {
    /// Distinct records, in first-appearance order.
    xs: Vec<&'a [f64]>,
    /// Whether any request absorbs this record (ψ needs its predicted
    /// class; predict-only records skip eager dyn predicts).
    need_class: Vec<bool>,
    /// [`hash_record`] value per distinct record (kept for rehashing on
    /// growth).
    hashes: Vec<u64>,
    /// Open-addressing dedup slots: `(hash, record_index)`,
    /// `u32::MAX` = empty. Power-of-two capacity, grown at 50% load.
    slots: Vec<(u64, u32)>,
    /// `slots.len() - 1`, the probe mask.
    mask: usize,
    /// Flat-tree node reached per `(record, concept)`, row-major by
    /// record; `u32::MAX` for dyn concepts. Filled by `evaluate`.
    node: Vec<u32>,
    /// Predicted class per `(record, concept)`; `u32::MAX` where it was
    /// not needed. Filled by `evaluate`.
    class: Vec<u32>,
    /// Total [`BatchTable::intern`] calls (including duplicates) — the
    /// numerator of the batch's dedup ratio; [`Self::n_records`] is the
    /// denominator.
    interned: u64,
}

/// Word-at-a-time multiplicative mix over the record's f64 bit patterns
/// (one rotate–xor–multiply per attribute, in the style of FxHash) —
/// deterministic, seedless, and collision-checked against the stored
/// record before dedup, so a collision can never merge two different
/// records. Hash quality only affects probe length, never correctness.
fn hash_record(x: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in x {
        h = (h.rotate_left(5) ^ v.to_bits()).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    h
}

impl<'a> BatchTable<'a> {
    /// A table expecting up to `expected` interns (more still work: the
    /// probe table rehashes into double the capacity whenever it reaches
    /// 50% load).
    pub fn with_capacity(expected: usize) -> Self {
        let slots = (2 * expected.max(1)).next_power_of_two();
        BatchTable {
            xs: Vec::with_capacity(expected),
            need_class: Vec::with_capacity(expected),
            hashes: Vec::with_capacity(expected),
            slots: vec![(0, u32::MAX); slots],
            mask: slots - 1,
            node: Vec::new(),
            class: Vec::new(),
            interned: 0,
        }
    }

    /// Intern `x`, returning its record index: a previous index if an
    /// identical record (same length, same f64 bits) was already
    /// interned, a fresh one otherwise. `need_class` is OR-ed into the
    /// record's flag.
    pub fn intern(&mut self, x: &'a [f64], need_class: bool) -> u32 {
        self.interned += 1;
        if 2 * self.xs.len() >= self.slots.len() {
            self.grow();
        }
        let hash = hash_record(x);
        let mut at = hash as usize & self.mask;
        loop {
            let (slot_hash, rec) = self.slots[at];
            if rec == u32::MAX {
                let rec = self.xs.len() as u32;
                self.slots[at] = (hash, rec);
                self.xs.push(x);
                self.need_class.push(need_class);
                self.hashes.push(hash);
                return rec;
            }
            // Equal hash alone is not enough: compare the records
            // bitwise. A true collision keeps probing and gets its own
            // slot — dedup is an optimization, never a correctness risk.
            if slot_hash == hash && bits_equal(self.xs[rec as usize], x) {
                self.need_class[rec as usize] |= need_class;
                return rec;
            }
            at = (at + 1) & self.mask;
        }
    }

    /// Double the probe table and re-seat every record.
    fn grow(&mut self) {
        let slots = self.slots.len() * 2;
        self.slots = vec![(0, u32::MAX); slots];
        self.mask = slots - 1;
        for (rec, &hash) in self.hashes.iter().enumerate() {
            let mut at = hash as usize & self.mask;
            while self.slots[at].1 != u32::MAX {
                at = (at + 1) & self.mask;
            }
            self.slots[at] = (hash, rec as u32);
        }
    }

    /// Number of distinct records interned so far.
    pub fn n_records(&self) -> usize {
        self.xs.len()
    }

    /// Total [`Self::intern`] calls, duplicates included. The batch's
    /// dedup ratio is `n_interned / n_records` — how many stream
    /// requests each concept-outer evaluation was amortized across.
    pub fn n_interned(&self) -> u64 {
        self.interned
    }
}

/// Exact f64-bit equality of two records (NaN-safe: two NaNs with equal
/// bits compare equal, which is precisely what dedup wants).
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Reusable per-worker scratch for the kernel — the score accumulator of
/// Eqs. 10–11, a row buffer for concepts that evaluate through dynamic
/// dispatch, and the concept-sized ψ buffer the posterior update borrows
/// (a [`FilterView`] owns no scratch of its own).
pub struct KernelScratch {
    /// Per-class score accumulator.
    scores: Vec<f64>,
    /// Row buffer for `Dyn` concept evaluations.
    dyn_row: Vec<f64>,
    /// ψ(c, yₜ) per concept for the record being absorbed (Eq. 8).
    psi: Vec<f64>,
}

impl KernelScratch {
    /// Scratch sized for `model`'s concept and class counts.
    pub fn new(model: &CompiledModel) -> Self {
        KernelScratch {
            scores: Vec::with_capacity(model.n_classes),
            dyn_row: vec![0.0; model.n_classes],
            psi: vec![0.0; model.n_concepts],
        }
    }
}

/// Batch-amortized kernel telemetry: everything one processing task
/// learned about its slice of a batch, accumulated with plain adds and
/// folded upward once per batch — never one clock read or atomic per
/// stream-record.
///
/// The accumulator is deliberately *derivable on both kernel paths*:
/// the scalar loop and the compiled kernel bump the same fields from
/// the same logical events (a prediction served, a record absorbed, a
/// §III-C early termination), so a fully-instrumented compiled run and
/// an uninstrumented scalar run can be compared counter-for-counter —
/// the differential property `hom-serve/tests/obs_differential.rs`
/// enforces. Stage durations (`*_ns`) are the only fields exclusive to
/// whoever actually timed a stage, and they are measured per *task*,
/// so per-record costs fall out by division.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Requests processed (every request kind).
    pub requests: u64,
    /// [`BatchTable::intern`] calls (compiled path; equals the number of
    /// records the task pushed through the dedup table).
    pub interned: u64,
    /// Distinct records after dedup (the kernel evaluated each once).
    pub distinct: u64,
    /// Predictions served (`Predict` + `Step` requests).
    pub predicted: u64,
    /// Labeled records absorbed (`Observe` + `Step` requests).
    pub observed: u64,
    /// Predictions the §III-C pruning terminated early (consulted fewer
    /// than all concepts).
    pub pruned: u64,
    /// Total concepts consulted across pruned predictions — the
    /// prune-depth numerator (`consulted / predicted` = mean depth).
    pub consulted: u64,
    /// Σ of Eq. 7 likelihoods `P(yₜ | y₁..yₜ₋₁)` over absorbed records —
    /// the fleet-evidence numerator (`likelihood / observed` = mean).
    pub likelihood: f64,
    /// Wall-clock spent interning + resolving records, per task.
    pub intern_ns: u64,
    /// Wall-clock spent in [`CompiledModel::evaluate`] (the
    /// concept-outer classifier pass), per task.
    pub evaluate_ns: u64,
    /// Wall-clock spent applying per-stream updates (absorb / advance /
    /// predict array passes), per task.
    pub apply_ns: u64,
    /// Per-concept MAP hits: after each absorb+roll, the concept with
    /// the largest prior (the stream's current MAP concept) gets one
    /// hit. Indexed by concept id; length is the model's concept count
    /// (empty until the first absorb when constructed via `default`).
    pub map_hits: Vec<u64>,
}

impl BatchStats {
    /// An empty accumulator with `map_hits` sized for `n_concepts`.
    pub fn new(n_concepts: usize) -> Self {
        BatchStats {
            map_hits: vec![0; n_concepts],
            ..BatchStats::default()
        }
    }

    /// Record a MAP hit for `concept`, growing `map_hits` on demand (so
    /// a `default()`-constructed accumulator still counts correctly).
    #[inline]
    pub fn map_hit(&mut self, concept: usize) {
        if self.map_hits.len() <= concept {
            self.map_hits.resize(concept + 1, 0);
        }
        self.map_hits[concept] += 1;
    }

    /// Fold another task's accumulator into this one (element-wise adds;
    /// `map_hits` grows to the longer of the two).
    pub fn merge(&mut self, other: &BatchStats) {
        self.requests += other.requests;
        self.interned += other.interned;
        self.distinct += other.distinct;
        self.predicted += other.predicted;
        self.observed += other.observed;
        self.pruned += other.pruned;
        self.consulted += other.consulted;
        self.likelihood += other.likelihood;
        self.intern_ns += other.intern_ns;
        self.evaluate_ns += other.evaluate_ns;
        self.apply_ns += other.apply_ns;
        if self.map_hits.len() < other.map_hits.len() {
            self.map_hits.resize(other.map_hits.len(), 0);
        }
        for (a, &b) in self.map_hits.iter_mut().zip(other.map_hits.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildParams};
    use crate::filter::FilterState;
    use hom_classifiers::DecisionTreeLearner;
    use hom_cluster::ClusterParams;
    use hom_data::stream::collect;
    use hom_data::{Attribute, Schema, StreamSource};
    use hom_datagen::{StaggerParams, StaggerSource};

    fn bits(p: &[f64]) -> Vec<u64> {
        p.iter().map(|v| v.to_bits()).collect()
    }

    fn stagger_model() -> (HighOrderModel, Vec<hom_data::StreamRecord>) {
        let mut src = StaggerSource::new(StaggerParams {
            lambda: 0.01,
            ..Default::default()
        });
        let (data, _) = collect(&mut src, 2000);
        let (model, _) = build(
            &data,
            &DecisionTreeLearner::new(),
            &BuildParams {
                cluster: ClusterParams {
                    block_size: 10,
                    seed: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let test = (0..400).map(|_| src.next_record()).collect();
        (model, test)
    }

    /// Drive one stream through the scalar FilterState and the compiled
    /// kernel in lockstep: every posterior, prior, prediction and consult
    /// count must match to the bit.
    #[test]
    fn kernel_matches_scalar_filter_bit_for_bit() {
        let (model, test) = stagger_model();
        let compiled = CompiledModel::compile(&model);
        assert_eq!(compiled.n_flattened(), compiled.n_concepts());
        let mut scalar = FilterState::new(&model);
        let mut batched = FilterState::new(&model);
        let mut scratch = KernelScratch::new(&compiled);
        for (t, r) in test.iter().enumerate() {
            let mut table = BatchTable::with_capacity(1);
            let rec = table.intern(&r.x, true);
            compiled.evaluate(&mut table);

            let want_full = scalar.predict(&model, &r.x);
            let got_full = compiled.predict(&batched.as_view(), &table, rec, &mut scratch);
            assert_eq!(got_full, want_full, "full predict diverged at t = {t}");

            let want = scalar.predict_pruned(&model, &r.x);
            let got = compiled.predict_pruned(&batched.as_view(), &table, rec, &mut scratch);
            assert_eq!(got, want, "pruned predict diverged at t = {t}");

            scalar.observe(&model, &r.x, r.y);
            compiled.observe(&mut batched.as_view(), &table, rec, r.y, &mut scratch);
            assert_eq!(
                bits(scalar.posterior()),
                bits(batched.posterior()),
                "posterior diverged at t = {t}"
            );
            assert_eq!(bits(scalar.prior()), bits(batched.prior()));
            assert_eq!(scalar.order(), batched.order());
            assert_eq!(
                scalar.last_likelihood().to_bits(),
                batched.last_likelihood().to_bits()
            );
        }
    }

    #[test]
    fn advance_matches_scalar() {
        let (model, test) = stagger_model();
        let compiled = CompiledModel::compile(&model);
        let mut scalar = FilterState::new(&model);
        let mut batched = FilterState::new(&model);
        let mut scratch = KernelScratch::new(&compiled);
        let mut table = BatchTable::with_capacity(1);
        let rec = table.intern(&test[0].x, true);
        compiled.evaluate(&mut table);
        scalar.observe(&model, &test[0].x, test[0].y);
        compiled.observe(&mut batched.as_view(), &table, rec, test[0].y, &mut scratch);
        scalar.advance_by(&model, 3);
        compiled.advance_by(&mut batched.as_view(), 3);
        assert_eq!(bits(scalar.posterior()), bits(batched.posterior()));
        assert_eq!(bits(scalar.prior()), bits(batched.prior()));
        assert_eq!(scalar.order(), batched.order());
    }

    #[test]
    fn interning_dedups_identical_records() {
        let mut table = BatchTable::with_capacity(4);
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0, 4.0];
        let a2 = a.clone();
        let r0 = table.intern(&a, false);
        let r1 = table.intern(&b, true);
        let r2 = table.intern(&a2, true);
        assert_eq!(r0, r2, "identical records share a slot");
        assert_ne!(r0, r1);
        assert_eq!(table.n_records(), 2);
        // the dup's need_class OR-ed into the original
        assert!(table.need_class[r0 as usize]);
    }

    #[test]
    fn interning_distinguishes_negative_zero() {
        // -0.0 == 0.0 under f64 comparison but differs in bits; dedup is
        // bitwise so the records stay distinct (classifiers could in
        // principle route them differently — never merge).
        let mut table = BatchTable::with_capacity(2);
        let pos = vec![0.0];
        let neg = vec![-0.0];
        assert_ne!(table.intern(&pos, false), table.intern(&neg, false));
    }

    /// A classifier that refuses to flatten, to force the kernel's dyn
    /// fallback path.
    struct Opaque(hom_classifiers::MajorityClassifier);
    impl Classifier for Opaque {
        fn n_classes(&self) -> usize {
            self.0.n_classes()
        }
        fn predict(&self, x: &[f64]) -> ClassId {
            self.0.predict(x)
        }
        fn predict_proba(&self, x: &[f64], out: &mut [f64]) {
            self.0.predict_proba(x, out);
        }
    }

    #[test]
    fn dyn_fallback_matches_scalar() {
        use crate::concept::Concept;
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(Opaque(hom_classifiers::MajorityClassifier::from_counts(&[
                    8, 2,
                ]))),
                err: 0.2,
                n_records: 10,
                n_occurrences: 1,
            },
            Concept {
                id: 1,
                model: Arc::new(hom_classifiers::MajorityClassifier::from_counts(&[1, 9])),
                err: 0.1,
                n_records: 10,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 50), (1, 50)]);
        let model = HighOrderModel::from_parts(schema, concepts, stats);
        let compiled = CompiledModel::compile(&model);
        assert_eq!(compiled.n_flattened(), 1, "one concept must stay dyn");
        let mut scalar = FilterState::new(&model);
        let mut batched = FilterState::new(&model);
        let mut scratch = KernelScratch::new(&compiled);
        for t in 0..40u32 {
            let x = vec![t as f64];
            let y = t % 2;
            let mut table = BatchTable::with_capacity(1);
            let rec = table.intern(&x, true);
            compiled.evaluate(&mut table);
            assert_eq!(
                compiled.predict_pruned(&batched.as_view(), &table, rec, &mut scratch),
                scalar.predict_pruned(&model, &x)
            );
            scalar.observe(&model, &x, y);
            compiled.observe(&mut batched.as_view(), &table, rec, y, &mut scratch);
            assert_eq!(bits(scalar.posterior()), bits(batched.posterior()));
        }
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn rejects_mismatched_state() {
        let (model, _) = stagger_model();
        let compiled = CompiledModel::compile(&model);
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let other = HighOrderModel::from_parts(
            schema,
            vec![crate::concept::Concept {
                id: 0,
                model: Arc::new(hom_classifiers::MajorityClassifier::from_counts(&[1, 1])),
                err: 0.1,
                n_records: 2,
                n_occurrences: 1,
            }],
            TransitionStats::from_occurrences(1, &[(0, 10)]),
        );
        let mut state = FilterState::new(&other);
        if state.n_concepts() == compiled.n_concepts() {
            // the toy model happening to match sizes would defeat the test
            panic!("different model sizes expected");
        }
        compiled.advance(&mut state.as_view());
    }

    /// Interning far more records than the expected capacity must still
    /// be correct: the probe table rehashes as it fills.
    #[test]
    fn overflowing_expected_capacity_stays_correct() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 * 0.5]).collect();
        let mut table = BatchTable::with_capacity(2);
        let seen: Vec<u32> = xs.iter().map(|x| table.intern(x, false)).collect();
        // all distinct, and re-interning finds the same ids
        assert_eq!(table.n_records(), 64);
        for (x, &want) in xs.iter().zip(&seen) {
            assert_eq!(table.intern(x, false), want);
        }
    }
}
