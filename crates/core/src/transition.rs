//! Concept-change statistics and the transition kernel χ (Eq. 6).

/// The high-order model's concept-change statistics:
///
/// * `Len_i` — mean occurrence length of concept `i` in records;
/// * `Freq_i` — frequency of concept `i` among all occurrences;
/// * `χ(i,j)` — the probability that the next record's concept is `j`
///   given the current record's concept is `i` (Eq. 6):
///
/// ```text
/// χ(i,i) = 1 − 1/Len_i
/// χ(i,j) = (1/Len_i) · Freq_j / (1 − Freq_i)        (i ≠ j)
/// ```
///
/// `1/Len_i` is the per-record probability of leaving concept `i`, and
/// `Freq_j / (1 − Freq_i)` distributes the exit mass over the other
/// concepts proportionally to how often they occur in history.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionStats {
    n: usize,
    /// Mean occurrence length per concept.
    len: Vec<f64>,
    /// Occurrence frequency per concept.
    freq: Vec<f64>,
    /// Row-major `χ[i * n + j]`.
    chi: Vec<f64>,
}

impl TransitionStats {
    /// Build the statistics from the historical sequence of concept
    /// occurrences, each `(concept_id, length_in_records)`. Adjacent
    /// occurrences of the same concept should already be coalesced (the
    /// builder does this); if not, they are counted as separate
    /// occurrences, which only biases `Len` downward.
    ///
    /// # Panics
    /// Panics if `occurrences` is empty, a length is zero, or a concept id
    /// is `>= n_concepts`.
    pub fn from_occurrences(n_concepts: usize, occurrences: &[(usize, usize)]) -> Self {
        assert!(!occurrences.is_empty(), "need at least one occurrence");
        let mut count = vec![0usize; n_concepts];
        let mut records = vec![0usize; n_concepts];
        for &(c, len) in occurrences {
            assert!(c < n_concepts, "occurrence of unknown concept {c}");
            assert!(len > 0, "zero-length occurrence");
            count[c] += 1;
            records[c] += len;
        }
        Self::from_totals(&count, &records)
    }

    /// Build the statistics from per-concept totals: `count[c]` historical
    /// occurrences of concept `c` spanning `records[c]` records in all.
    /// This is the sufficient statistic of [`Self::from_occurrences`]
    /// (`Len` and `Freq` only depend on the totals, not the order), and it
    /// is what the incremental model-maintenance path has once the
    /// occurrence sequence itself is no longer retained: a mined model
    /// stores each concept's `n_occurrences`/`n_records`, so admitting a
    /// new concept or recording a new occurrence of a known one
    /// re-derives an exactly re-normalized kernel χ from the updated
    /// totals (see `HighOrderModel::admit_concept`).
    ///
    /// # Panics
    /// Panics if the slices disagree in length, no concept has an
    /// occurrence, or some concept has occurrences but no records.
    pub fn from_totals(count: &[usize], records: &[usize]) -> Self {
        assert_eq!(count.len(), records.len(), "totals must align");
        let n_concepts = count.len();
        for (c, (&k, &r)) in count.iter().zip(records).enumerate() {
            assert!(
                k == 0 || r >= k,
                "concept {c}: {k} occurrences need at least {k} records, got {r}"
            );
        }

        let total_occ: usize = count.iter().sum();
        assert!(total_occ > 0, "need at least one occurrence");
        // A concept that never occurs (possible only if the caller passes
        // a larger n_concepts than the data supports) gets Len 1 and
        // Freq 0, making it immediately exited and never entered.
        let len: Vec<f64> = count
            .iter()
            .zip(records)
            .map(|(&c, &r)| if c > 0 { r as f64 / c as f64 } else { 1.0 })
            .collect();
        let freq: Vec<f64> = count.iter().map(|&c| c as f64 / total_occ as f64).collect();

        let mut chi = vec![0.0; n_concepts * n_concepts];
        if n_concepts == 1 {
            chi[0] = 1.0;
        } else {
            for i in 0..n_concepts {
                let leave = 1.0 / len[i].max(1.0);
                let stay = 1.0 - leave;
                let denom = 1.0 - freq[i];
                for j in 0..n_concepts {
                    chi[i * n_concepts + j] = if i == j {
                        stay
                    } else if denom > 0.0 {
                        leave * freq[j] / denom
                    } else {
                        // freq[i] == 1: history never saw another concept;
                        // spread the exit mass uniformly.
                        leave / (n_concepts - 1) as f64
                    };
                }
            }
        }

        TransitionStats {
            n: n_concepts,
            len,
            freq,
            chi,
        }
    }

    /// Number of concepts.
    pub fn n_concepts(&self) -> usize {
        self.n
    }

    /// Mean occurrence length of concept `i`.
    pub fn len(&self, i: usize) -> f64 {
        self.len[i]
    }

    /// Occurrence frequency of concept `i`.
    pub fn freq(&self, i: usize) -> f64 {
        self.freq[i]
    }

    /// `χ(i,j)`.
    pub fn chi(&self, i: usize, j: usize) -> f64 {
        self.chi[i * self.n + j]
    }

    /// The raw `(len, freq, chi)` vectors, for the model wire codec —
    /// serialized as f64 bits so a decoded kernel is bit-identical to
    /// the encoded one (`from_totals` is *not* re-run on the far side:
    /// Eq. 6 re-derivation would be value-equal but the cluster's
    /// differential bar demands bit equality without trusting float
    /// expression ordering across builds).
    pub(crate) fn raw_parts(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.len, &self.freq, &self.chi)
    }

    /// Rebuild from raw vectors (the model wire codec's decode side).
    /// Lengths are validated; the values themselves are trusted as far
    /// as being the paper's Eq. 6 quantities goes — the codec's FNV-1a
    /// trailer already guards against transport corruption.
    pub(crate) fn from_raw_parts(
        n_concepts: usize,
        len: Vec<f64>,
        freq: Vec<f64>,
        chi: Vec<f64>,
    ) -> Result<Self, &'static str> {
        if len.len() != n_concepts || freq.len() != n_concepts {
            return Err("Len/Freq length mismatch");
        }
        if chi.len() != n_concepts * n_concepts {
            return Err("chi is not n_concepts squared");
        }
        Ok(TransitionStats {
            n: n_concepts,
            len,
            freq,
            chi,
        })
    }

    /// One step of the prior update (Eq. 5): `out[c] = Σᵢ p[i]·χ(i,c)`.
    ///
    /// # Panics
    /// Panics if slice lengths don't match `n_concepts`.
    pub fn advance(&self, p: &[f64], out: &mut [f64]) {
        assert_eq!(p.len(), self.n);
        assert_eq!(out.len(), self.n);
        out.fill(0.0);
        for (i, &pi) in p.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            let row = &self.chi[i * self.n..(i + 1) * self.n];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += pi * x;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TransitionStats {
        // A B A C — lengths 100, 50, 100, 50
        TransitionStats::from_occurrences(3, &[(0, 100), (1, 50), (0, 100), (2, 50)])
    }

    #[test]
    fn lengths_and_frequencies() {
        let s = stats();
        assert_eq!(s.len(0), 100.0);
        assert_eq!(s.len(1), 50.0);
        assert_eq!(s.freq(0), 0.5);
        assert_eq!(s.freq(1), 0.25);
        assert_eq!(s.freq(2), 0.25);
    }

    #[test]
    fn chi_rows_sum_to_one() {
        let s = stats();
        for i in 0..3 {
            let sum: f64 = (0..3).map(|j| s.chi(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn chi_matches_eq6() {
        let s = stats();
        // χ(0,0) = 1 − 1/100
        assert!((s.chi(0, 0) - 0.99).abs() < 1e-12);
        // χ(0,1) = (1/100) · 0.25/(1−0.5) = 0.005
        assert!((s.chi(0, 1) - 0.005).abs() < 1e-12);
        // χ(1,0) = (1/50) · 0.5/(0.75)
        assert!((s.chi(1, 0) - 0.02 * 0.5 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn advance_preserves_probability_mass() {
        let s = stats();
        let p = [0.7, 0.2, 0.1];
        let mut out = [0.0; 3];
        s.advance(&p, &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Mass mostly stays where it was (long concepts).
        assert!(out[0] > 0.65);
    }

    #[test]
    fn advance_from_point_mass_matches_row() {
        let s = stats();
        let p = [0.0, 1.0, 0.0];
        let mut out = [0.0; 3];
        s.advance(&p, &mut out);
        for (j, &o) in out.iter().enumerate() {
            assert!((o - s.chi(1, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn single_concept_is_absorbing() {
        let s = TransitionStats::from_occurrences(1, &[(0, 500)]);
        assert_eq!(s.chi(0, 0), 1.0);
        let mut out = [0.0];
        s.advance(&[1.0], &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn unseen_concept_gets_zero_frequency() {
        let s = TransitionStats::from_occurrences(3, &[(0, 10), (1, 10)]);
        assert_eq!(s.freq(2), 0.0);
        // nobody transitions into concept 2
        assert_eq!(s.chi(0, 2), 0.0);
        assert_eq!(s.chi(1, 2), 0.0);
    }

    #[test]
    fn totals_are_a_sufficient_statistic() {
        // Same totals as `stats()` (A B A C): the kernel must be
        // bit-identical whether built from the sequence or the totals.
        let a = stats();
        let b = TransitionStats::from_totals(&[2, 1, 1], &[200, 50, 50]);
        assert_eq!(a, b);
    }

    #[test]
    fn totals_extended_by_one_concept_renormalize() {
        let s = TransitionStats::from_totals(&[2, 1, 1, 1], &[200, 50, 50, 120]);
        assert_eq!(s.n_concepts(), 4);
        assert_eq!(s.freq(3), 0.2);
        assert_eq!(s.len(3), 120.0);
        for i in 0..4 {
            let sum: f64 = (0..4).map(|j| s.chi(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
            // every concept is now reachable from every other
            for j in 0..4 {
                if i != j {
                    assert!(s.chi(i, j) > 0.0, "χ({i},{j}) = 0");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one occurrence")]
    fn rejects_all_zero_totals() {
        TransitionStats::from_totals(&[0, 0], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "unknown concept")]
    fn rejects_out_of_range_concept() {
        TransitionStats::from_occurrences(2, &[(5, 10)]);
    }

    #[test]
    #[should_panic(expected = "at least one occurrence")]
    fn rejects_empty_history() {
        TransitionStats::from_occurrences(2, &[]);
    }
}
