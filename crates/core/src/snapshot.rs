//! Versioned binary snapshots of [`FilterState`].
//!
//! A snapshot captures exactly the logical state of one stream's filter —
//! posterior, prior and the prune order — so the stream can be evicted
//! from memory and later resumed **bit-identically**: every prediction
//! and posterior after a restore equals what the uninterrupted run would
//! have produced. Scratch buffers are derivable from the model and are
//! not stored.
//!
//! # Wire format (all little-endian)
//!
//! ```text
//! offset  size   field
//! 0       4      magic  "HOMF"
//! 4       2      version (u16) = 2
//! 6       4      n_concepts (u32)
//! 10      4      epoch (u32)                      — version ≥ 2 only
//! 14      8·n    posterior (f64 × n)
//! 14+8n   8·n    prior (f64 × n)
//! 14+16n  4·n    order (u32 × n, a permutation of 0..n)
//! …       8      FNV-1a checksum (u64) over all preceding bytes
//! ```
//!
//! Version 1 (what every snapshot before model maintenance existed was
//! written as) is the same layout without the `epoch` field; it is still
//! read. `epoch` records the serving engine's model generation at save
//! time, so a snapshot parked across a hot-swap can tell how stale it is
//! ([`snapshot_epoch`]). Version-1 bytes report epoch 0.
//!
//! [`FilterState::restore`] validates everything — length, magic,
//! version, checksum, model compatibility, that the distributions are
//! finite/non-negative/normalized and the order a permutation — and
//! returns a [`SnapshotError`] instead of panicking, so corrupt or
//! truncated bytes from disk or the network can never take a serving
//! process down. [`FilterState::restore_migrating`] additionally accepts
//! snapshots taken against an **older, smaller** model (fewer concepts
//! than the restoring one) and migrates them forward with
//! [`FilterState::migrate`]'s extension rule — the path a serving engine
//! takes for streams parked across a model hot-swap.

use std::fmt;

use crate::build::HighOrderModel;
use crate::filter::{migrate_parts, FilterState};

/// First four bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HOMF";

/// The newest snapshot format version this build writes. Versions
/// `1..=SNAPSHOT_VERSION` are all readable.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Why a snapshot failed to restore. Every variant is a rejected input,
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the header or the declared payload requires.
    Truncated {
        /// Bytes the snapshot would need to be complete.
        needed: usize,
        /// Bytes actually provided.
        got: usize,
    },
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// A version this build does not know how to read.
    UnsupportedVersion(u16),
    /// The snapshot's concept count is incompatible with the model it is
    /// being restored into: different under [`FilterState::restore`],
    /// *larger* under [`FilterState::restore_migrating`] (a state can be
    /// migrated forward into a grown model, never backward into a
    /// smaller one).
    ModelMismatch {
        /// Concept count recorded in the snapshot.
        snapshot: usize,
        /// Concept count of the model restoring it.
        model: usize,
    },
    /// Structurally well-formed but semantically invalid content (failed
    /// checksum, non-finite probabilities, an order that is not a
    /// permutation, trailing bytes, …).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, got } => {
                write!(f, "snapshot truncated: need {needed} bytes, got {got}")
            }
            SnapshotError::BadMagic => write!(f, "not a filter snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (supported: 1..={SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ModelMismatch { snapshot, model } => write!(
                f,
                "snapshot is for a {snapshot}-concept model, restoring into {model} concepts"
            ),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over `bytes` — enough to reject bit flips and splices; this is
/// an integrity check, not an authenticity one. Public because the codec
/// framing is shared: `hom-store` seals every WAL/segment record with the
/// same checksum that seals the snapshot payload inside it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(bytes[at..at + 2].try_into().expect("bounds checked"))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn read_f64(bytes: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Header bytes before the variable-size payload, per format version.
fn header_len(version: u16) -> usize {
    match version {
        1 => 4 + 2 + 4,
        _ => 4 + 2 + 4 + 4,
    }
}

/// Total snapshot size (header + payload + checksum) for `n` concepts.
fn total_len(version: u16, n: usize) -> usize {
    header_len(version) + 8 * n + 8 * n + 4 * n + 8
}

/// The model epoch recorded in a snapshot, without restoring it. Returns
/// `None` for bytes that are not (a prefix of) a structurally plausible
/// snapshot header; version-1 snapshots (which predate the field) report
/// `Some(0)`. Only the header is inspected — a `Some` says nothing about
/// the payload's integrity.
pub fn snapshot_epoch(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < header_len(1) || bytes[..4] != SNAPSHOT_MAGIC {
        return None;
    }
    match read_u16(bytes, 4) {
        1 => Some(0),
        2 if bytes.len() >= header_len(2) => Some(read_u32(bytes, 10)),
        _ => None,
    }
}

/// Check one serialized distribution: finite, non-negative, normalized.
fn check_distribution(
    p: &[f64],
    not_a_probability: &'static str,
    not_normalized: &'static str,
) -> Result<(), SnapshotError> {
    let mut sum = 0.0;
    for &v in p {
        if !v.is_finite() || v < 0.0 {
            return Err(SnapshotError::Corrupt(not_a_probability));
        }
        sum += v;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(SnapshotError::Corrupt(not_normalized));
    }
    Ok(())
}

/// The validated content of a snapshot, before any model is involved.
struct Parsed {
    n: usize,
    posterior: Vec<f64>,
    prior: Vec<f64>,
    order: Vec<u32>,
}

/// Parse and validate everything that does not need a model: framing,
/// checksum, distribution and permutation invariants.
fn parse(bytes: &[u8]) -> Result<Parsed, SnapshotError> {
    if bytes.len() < header_len(1) {
        return Err(SnapshotError::Truncated {
            needed: header_len(1),
            got: bytes.len(),
        });
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u16(bytes, 4);
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let n = read_u32(bytes, 6) as usize;
    let total = total_len(version, n);
    if bytes.len() < total {
        return Err(SnapshotError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(SnapshotError::Corrupt("trailing bytes after checksum"));
    }
    let declared = read_u64(bytes, total - 8);
    if fnv1a(&bytes[..total - 8]) != declared {
        return Err(SnapshotError::Corrupt("checksum mismatch"));
    }

    let mut at = header_len(version);
    let mut posterior = Vec::with_capacity(n);
    for _ in 0..n {
        posterior.push(read_f64(bytes, at));
        at += 8;
    }
    let mut prior = Vec::with_capacity(n);
    for _ in 0..n {
        prior.push(read_f64(bytes, at));
        at += 8;
    }
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        order.push(read_u32(bytes, at));
        at += 4;
    }

    check_distribution(
        &posterior,
        "posterior entry not a probability",
        "posterior does not sum to 1",
    )?;
    check_distribution(
        &prior,
        "prior entry not a probability",
        "prior does not sum to 1",
    )?;
    let mut seen = vec![false; n];
    for &c in &order {
        if (c as usize) >= n || seen[c as usize] {
            return Err(SnapshotError::Corrupt("order is not a permutation"));
        }
        seen[c as usize] = true;
    }

    Ok(Parsed {
        n,
        posterior,
        prior,
        order,
    })
}

impl FilterState {
    /// Serialize this state to the current wire format with epoch 0.
    /// Equivalent to [`Self::snapshot_with_epoch`]`(0)` — standalone
    /// callers that never hot-swap models don't care about epochs.
    pub fn snapshot(&self) -> Vec<u8> {
        self.snapshot_with_epoch(0)
    }

    /// Serialize this state to the current (version-2) wire format,
    /// stamping `epoch` — the serving engine's model generation — into
    /// the header so a snapshot parked across a model hot-swap knows
    /// which model it was taken against ([`snapshot_epoch`]).
    pub fn snapshot_with_epoch(&self, epoch: u32) -> Vec<u8> {
        let n = self.n_concepts();
        let mut out = Vec::with_capacity(total_len(SNAPSHOT_VERSION, n));
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&epoch.to_le_bytes());
        for &v in self.posterior() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in self.prior() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &c in self.order() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialize a snapshot taken with [`FilterState::snapshot`]
    /// (any supported version), validating it against `model`. On
    /// success the returned state continues the stream bit-identically;
    /// on any defect the bytes are rejected with a [`SnapshotError`] —
    /// this function never panics on untrusted input.
    pub fn restore(model: &HighOrderModel, bytes: &[u8]) -> Result<FilterState, SnapshotError> {
        let p = parse(bytes)?;
        if p.n != model.n_concepts() {
            return Err(SnapshotError::ModelMismatch {
                snapshot: p.n,
                model: model.n_concepts(),
            });
        }
        Ok(FilterState::from_parts(
            model,
            p.posterior,
            p.prior,
            p.order,
        ))
    }

    /// Like [`Self::restore`], but a snapshot taken against an older
    /// model with **fewer** concepts is accepted and migrated forward
    /// with the [`Self::migrate`] extension rule (new concepts get their
    /// stationary `Freq_j` mass, distributions re-normalized). Returns
    /// the state and whether migration happened (`false` = plain
    /// bit-identical restore). A snapshot with *more* concepts than
    /// `model` is still a [`SnapshotError::ModelMismatch`] — states
    /// never migrate backward.
    ///
    /// This is the restore path a serving engine uses after a model
    /// hot-swap, when parked streams hold snapshots of the previous
    /// generation.
    pub fn restore_migrating(
        model: &HighOrderModel,
        bytes: &[u8],
    ) -> Result<(FilterState, bool), SnapshotError> {
        let p = parse(bytes)?;
        if p.n > model.n_concepts() {
            return Err(SnapshotError::ModelMismatch {
                snapshot: p.n,
                model: model.n_concepts(),
            });
        }
        if p.n == model.n_concepts() {
            return Ok((
                FilterState::from_parts(model, p.posterior, p.prior, p.order),
                false,
            ));
        }
        Ok((migrate_parts(model, &p.posterior, &p.prior, &p.order), true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionStats;
    use crate::Concept;
    use hom_classifiers::MajorityClassifier;
    use hom_data::{Attribute, Schema};
    use std::sync::Arc;

    fn model(n: usize) -> HighOrderModel {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = (0..n)
            .map(|id| Concept {
                id,
                model: Arc::new(MajorityClassifier::from_counts(if id % 2 == 0 {
                    &[10, 0]
                } else {
                    &[0, 10]
                })),
                err: 0.1 + 0.01 * id as f64,
                n_records: 50,
                n_occurrences: 1,
            })
            .collect();
        let occ: Vec<(usize, usize)> = (0..n).map(|c| (c, 40 + 10 * c)).collect();
        let stats = TransitionStats::from_occurrences(n, &occ);
        HighOrderModel::from_parts(schema, concepts, stats)
    }

    fn bits(p: &[f64]) -> Vec<u64> {
        p.iter().map(|v| v.to_bits()).collect()
    }

    /// Write `s` in the legacy version-1 format (no epoch field), as
    /// every pre-maintenance build did.
    fn snapshot_v1(s: &FilterState) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&(s.n_concepts() as u32).to_le_bytes());
        for &v in s.posterior() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in s.prior() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &c in s.order() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let m = model(3);
        let mut s = FilterState::new(&m);
        for t in 0..37u32 {
            s.observe(&m, &[0.0], t % 2);
        }
        let bytes = s.snapshot();
        let r = FilterState::restore(&m, &bytes).expect("restore");
        assert_eq!(bits(s.posterior()), bits(r.posterior()));
        assert_eq!(bits(s.prior()), bits(r.prior()));
        assert_eq!(s.order(), r.order());
        // and the continued runs agree exactly
        let mut a = s.clone();
        let mut b = r;
        for t in 0..50u32 {
            let x = [f64::from(t)];
            assert_eq!(a.predict_pruned(&m, &x), b.predict_pruned(&m, &x));
            a.observe(&m, &x, t % 2);
            b.observe(&m, &x, t % 2);
            assert_eq!(bits(a.posterior()), bits(b.posterior()));
        }
    }

    #[test]
    fn version_1_snapshots_still_restore() {
        let m = model(3);
        let mut s = FilterState::new(&m);
        for t in 0..23u32 {
            s.observe(&m, &[0.0], t % 2);
        }
        let legacy = snapshot_v1(&s);
        let r = FilterState::restore(&m, &legacy).expect("v1 restore");
        assert_eq!(bits(s.posterior()), bits(r.posterior()));
        assert_eq!(bits(s.prior()), bits(r.prior()));
        assert_eq!(s.order(), r.order());
        assert_eq!(snapshot_epoch(&legacy), Some(0));
    }

    #[test]
    fn epoch_round_trips() {
        let m = model(2);
        let s = FilterState::new(&m);
        let bytes = s.snapshot_with_epoch(7);
        assert_eq!(snapshot_epoch(&bytes), Some(7));
        assert_eq!(snapshot_epoch(&s.snapshot()), Some(0));
        assert_eq!(snapshot_epoch(b"nope"), None);
        // the epoch is covered by the checksum
        let mut bad = bytes.clone();
        bad[10] ^= 1;
        assert!(FilterState::restore(&m, &bad).is_err());
        // but a clean snapshot restores regardless of its epoch
        assert!(FilterState::restore(&m, &bytes).is_ok());
    }

    #[test]
    fn restore_migrating_extends_older_snapshots() {
        let m2 = model(2);
        let mut s = FilterState::new(&m2);
        for _ in 0..20 {
            s.observe(&m2, &[0.0], 1);
        }
        let bytes = s.snapshot();
        // the model gains a concept after the snapshot was parked
        let m3 = m2.admit_concept(Arc::new(MajorityClassifier::from_counts(&[5, 5])), 0.2, 60);
        let (r, migrated) = FilterState::restore_migrating(&m3, &bytes).expect("migrate");
        assert!(migrated);
        assert_eq!(r.n_concepts(), 3);
        // identical to the in-memory migration path
        let direct = s.migrate(&m3);
        assert_eq!(bits(r.posterior()), bits(direct.posterior()));
        assert_eq!(bits(r.prior()), bits(direct.prior()));
        assert_eq!(r.order(), direct.order());
        // same-size restore reports no migration and stays bit-identical
        let (same, migrated) = FilterState::restore_migrating(&m2, &bytes).expect("restore");
        assert!(!migrated);
        assert_eq!(bits(same.posterior()), bits(s.posterior()));
        // v1 bytes migrate just as well
        let (r1, migrated) =
            FilterState::restore_migrating(&m3, &snapshot_v1(&s)).expect("v1 migrate");
        assert!(migrated);
        assert_eq!(bits(r1.posterior()), bits(direct.posterior()));
    }

    #[test]
    fn restore_migrating_never_shrinks() {
        let m3 = model(3);
        let m2 = model(2);
        let bytes = FilterState::new(&m3).snapshot();
        assert_eq!(
            FilterState::restore_migrating(&m2, &bytes),
            Err(SnapshotError::ModelMismatch {
                snapshot: 3,
                model: 2
            })
        );
    }

    #[test]
    fn every_truncation_is_rejected() {
        let m = model(4);
        let mut s = FilterState::new(&m);
        s.observe(&m, &[0.0], 1);
        for bytes in [s.snapshot(), snapshot_v1(&s)] {
            for len in 0..bytes.len() {
                let err = FilterState::restore(&m, &bytes[..len])
                    .expect_err("truncated snapshot must be rejected");
                assert!(
                    matches!(
                        err,
                        SnapshotError::Truncated { .. } | SnapshotError::Corrupt(_)
                    ),
                    "len {len}: unexpected error {err:?}"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let m = model(3);
        let mut s = FilterState::new(&m);
        s.observe(&m, &[0.0], 0);
        for bytes in [s.snapshot(), snapshot_v1(&s)] {
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x40;
                assert!(
                    FilterState::restore(&m, &bad).is_err(),
                    "flip at byte {i} was accepted"
                );
            }
        }
    }

    #[test]
    fn wrong_model_is_a_mismatch() {
        let m3 = model(3);
        let m4 = model(4);
        let s = FilterState::new(&m3);
        let err = FilterState::restore(&m4, &s.snapshot()).expect_err("mismatch");
        assert_eq!(
            err,
            SnapshotError::ModelMismatch {
                snapshot: 3,
                model: 4
            }
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let m = model(2);
        let mut bytes = FilterState::new(&m).snapshot();
        bytes[4] = 9; // version low byte
                      // checksum no longer matches either, but the version gate fires
                      // first — both are rejections, never panics.
        let err = FilterState::restore(&m, &bytes).expect_err("version");
        assert_eq!(err, SnapshotError::UnsupportedVersion(9));
        // version 0 never existed
        bytes[4] = 0;
        let err = FilterState::restore(&m, &bytes).expect_err("version");
        assert_eq!(err, SnapshotError::UnsupportedVersion(0));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let m = model(2);
        let mut bytes = FilterState::new(&m).snapshot();
        bytes.push(0);
        assert_eq!(
            FilterState::restore(&m, &bytes),
            Err(SnapshotError::Corrupt("trailing bytes after checksum"))
        );
    }

    #[test]
    fn errors_render_a_message() {
        let e = SnapshotError::Truncated { needed: 10, got: 3 };
        assert!(e.to_string().contains("10"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
    }
}
