//! Versioned binary snapshots of [`FilterState`].
//!
//! A snapshot captures exactly the logical state of one stream's filter —
//! posterior, prior and the prune order — so the stream can be evicted
//! from memory and later resumed **bit-identically**: every prediction
//! and posterior after a restore equals what the uninterrupted run would
//! have produced. Scratch buffers are derivable from the model and are
//! not stored.
//!
//! # Wire format (version 1, all little-endian)
//!
//! ```text
//! offset  size   field
//! 0       4      magic  "HOMF"
//! 4       2      version (u16) = 1
//! 6       4      n_concepts (u32)
//! 10      8·n    posterior (f64 × n)
//! 10+8n   8·n    prior (f64 × n)
//! 10+16n  4·n    order (u32 × n, a permutation of 0..n)
//! …       8      FNV-1a checksum (u64) over all preceding bytes
//! ```
//!
//! [`FilterState::restore`] validates everything — length, magic,
//! version, checksum, model compatibility, that the distributions are
//! finite/non-negative/normalized and the order a permutation — and
//! returns a [`SnapshotError`] instead of panicking, so corrupt or
//! truncated bytes from disk or the network can never take a serving
//! process down.

use std::fmt;

use crate::build::HighOrderModel;
use crate::filter::FilterState;

/// First four bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HOMF";

/// The (only, so far) supported snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Why a snapshot failed to restore. Every variant is a rejected input,
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the header or the declared payload requires.
    Truncated {
        /// Bytes the snapshot would need to be complete.
        needed: usize,
        /// Bytes actually provided.
        got: usize,
    },
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// A version this build does not know how to read.
    UnsupportedVersion(u16),
    /// The snapshot was taken against a model with a different concept
    /// count than the one it is being restored into.
    ModelMismatch {
        /// Concept count recorded in the snapshot.
        snapshot: usize,
        /// Concept count of the model restoring it.
        model: usize,
    },
    /// Structurally well-formed but semantically invalid content (failed
    /// checksum, non-finite probabilities, an order that is not a
    /// permutation, trailing bytes, …).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, got } => {
                write!(f, "snapshot truncated: need {needed} bytes, got {got}")
            }
            SnapshotError::BadMagic => write!(f, "not a filter snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (supported: {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ModelMismatch { snapshot, model } => write!(
                f,
                "snapshot is for a {snapshot}-concept model, restoring into {model} concepts"
            ),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over `bytes` — enough to reject bit flips and splices; this is
/// an integrity check, not an authenticity one.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(bytes[at..at + 2].try_into().expect("bounds checked"))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn read_f64(bytes: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Header bytes before the variable-size payload.
const HEADER: usize = 4 + 2 + 4;

fn payload_len(n: usize) -> usize {
    HEADER + 8 * n + 8 * n + 4 * n
}

/// Check one serialized distribution: finite, non-negative, normalized.
fn check_distribution(
    p: &[f64],
    not_a_probability: &'static str,
    not_normalized: &'static str,
) -> Result<(), SnapshotError> {
    let mut sum = 0.0;
    for &v in p {
        if !v.is_finite() || v < 0.0 {
            return Err(SnapshotError::Corrupt(not_a_probability));
        }
        sum += v;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(SnapshotError::Corrupt(not_normalized));
    }
    Ok(())
}

impl FilterState {
    /// Serialize this state to the version-1 wire format above.
    pub fn snapshot(&self) -> Vec<u8> {
        let n = self.n_concepts();
        let mut out = Vec::with_capacity(payload_len(n) + 8);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        for &v in self.posterior() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in self.prior() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &c in self.order() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialize a snapshot taken with [`FilterState::snapshot`],
    /// validating it against `model`. On success the returned state
    /// continues the stream bit-identically; on any defect the bytes are
    /// rejected with a [`SnapshotError`] — this function never panics on
    /// untrusted input.
    pub fn restore(model: &HighOrderModel, bytes: &[u8]) -> Result<FilterState, SnapshotError> {
        if bytes.len() < HEADER {
            return Err(SnapshotError::Truncated {
                needed: HEADER,
                got: bytes.len(),
            });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u16(bytes, 4);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let n = read_u32(bytes, 6) as usize;
        let total = payload_len(n) + 8;
        if bytes.len() < total {
            return Err(SnapshotError::Truncated {
                needed: total,
                got: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(SnapshotError::Corrupt("trailing bytes after checksum"));
        }
        let declared = read_u64(bytes, total - 8);
        if fnv1a(&bytes[..total - 8]) != declared {
            return Err(SnapshotError::Corrupt("checksum mismatch"));
        }
        if n != model.n_concepts() {
            return Err(SnapshotError::ModelMismatch {
                snapshot: n,
                model: model.n_concepts(),
            });
        }

        let mut at = HEADER;
        let mut posterior = Vec::with_capacity(n);
        for _ in 0..n {
            posterior.push(read_f64(bytes, at));
            at += 8;
        }
        let mut prior = Vec::with_capacity(n);
        for _ in 0..n {
            prior.push(read_f64(bytes, at));
            at += 8;
        }
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            order.push(read_u32(bytes, at));
            at += 4;
        }

        check_distribution(
            &posterior,
            "posterior entry not a probability",
            "posterior does not sum to 1",
        )?;
        check_distribution(
            &prior,
            "prior entry not a probability",
            "prior does not sum to 1",
        )?;
        let mut seen = vec![false; n];
        for &c in &order {
            if (c as usize) >= n || seen[c as usize] {
                return Err(SnapshotError::Corrupt("order is not a permutation"));
            }
            seen[c as usize] = true;
        }

        Ok(FilterState::from_parts(model, posterior, prior, order))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionStats;
    use crate::Concept;
    use hom_classifiers::MajorityClassifier;
    use hom_data::{Attribute, Schema};
    use std::sync::Arc;

    fn model(n: usize) -> HighOrderModel {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = (0..n)
            .map(|id| Concept {
                id,
                model: Arc::new(MajorityClassifier::from_counts(if id % 2 == 0 {
                    &[10, 0]
                } else {
                    &[0, 10]
                })),
                err: 0.1 + 0.01 * id as f64,
                n_records: 50,
                n_occurrences: 1,
            })
            .collect();
        let occ: Vec<(usize, usize)> = (0..n).map(|c| (c, 40 + 10 * c)).collect();
        let stats = TransitionStats::from_occurrences(n, &occ);
        HighOrderModel::from_parts(schema, concepts, stats)
    }

    fn bits(p: &[f64]) -> Vec<u64> {
        p.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let m = model(3);
        let mut s = FilterState::new(&m);
        for t in 0..37u32 {
            s.observe(&m, &[0.0], t % 2);
        }
        let bytes = s.snapshot();
        let r = FilterState::restore(&m, &bytes).expect("restore");
        assert_eq!(bits(s.posterior()), bits(r.posterior()));
        assert_eq!(bits(s.prior()), bits(r.prior()));
        assert_eq!(s.order(), r.order());
        // and the continued runs agree exactly
        let mut a = s.clone();
        let mut b = r;
        for t in 0..50u32 {
            let x = [f64::from(t)];
            assert_eq!(a.predict_pruned(&m, &x), b.predict_pruned(&m, &x));
            a.observe(&m, &x, t % 2);
            b.observe(&m, &x, t % 2);
            assert_eq!(bits(a.posterior()), bits(b.posterior()));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let m = model(4);
        let mut s = FilterState::new(&m);
        s.observe(&m, &[0.0], 1);
        let bytes = s.snapshot();
        for len in 0..bytes.len() {
            let err = FilterState::restore(&m, &bytes[..len])
                .expect_err("truncated snapshot must be rejected");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::Corrupt(_)
                ),
                "len {len}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let m = model(3);
        let mut s = FilterState::new(&m);
        s.observe(&m, &[0.0], 0);
        let bytes = s.snapshot();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                FilterState::restore(&m, &bad).is_err(),
                "flip at byte {i} was accepted"
            );
        }
    }

    #[test]
    fn wrong_model_is_a_mismatch() {
        let m3 = model(3);
        let m4 = model(4);
        let s = FilterState::new(&m3);
        let err = FilterState::restore(&m4, &s.snapshot()).expect_err("mismatch");
        assert_eq!(
            err,
            SnapshotError::ModelMismatch {
                snapshot: 3,
                model: 4
            }
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let m = model(2);
        let mut bytes = FilterState::new(&m).snapshot();
        bytes[4] = 9; // version low byte
                      // checksum no longer matches either, but the version gate fires
                      // first — both are rejections, never panics.
        let err = FilterState::restore(&m, &bytes).expect_err("version");
        assert_eq!(err, SnapshotError::UnsupportedVersion(9));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let m = model(2);
        let mut bytes = FilterState::new(&m).snapshot();
        bytes.push(0);
        assert_eq!(
            FilterState::restore(&m, &bytes),
            Err(SnapshotError::Corrupt("trailing bytes after checksum"))
        );
    }

    #[test]
    fn errors_render_a_message() {
        let e = SnapshotError::Truncated { needed: 10, got: 3 };
        assert!(e.to_string().contains("10"));
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
    }
}
