//! Offline Viterbi smoothing of the concept sequence.
//!
//! The paper observes (§III-A) that the online filter is "to certain
//! extent training a Hidden Markov Model" and leaves the full analogy to
//! future work. This module implements that extension: given a *complete*
//! labeled segment, compute the most likely underlying concept sequence
//! with the standard Viterbi recursion over the same HMM — states are the
//! mined concepts, transitions are χ (Eq. 6), and the emission likelihood
//! of a labeled record is the `ψ` proxy (Eq. 8).
//!
//! Unlike the online filter, Viterbi sees the future: it is useful for
//! retrospective analysis (e.g. auditing *when* each concept was active,
//! or segmenting an archived stream), not for online prediction.

use hom_data::ClassId;

use crate::build::HighOrderModel;

/// The most likely concept sequence for the labeled records `(x, y)`.
///
/// Runs in `O(T · N²)` for `T` records and `N` concepts, in log domain for
/// numerical stability. Returns one concept id per record; empty input
/// yields an empty path.
pub fn most_likely_path(model: &HighOrderModel, records: &[(&[f64], ClassId)]) -> Vec<usize> {
    let n = model.n_concepts();
    let t_max = records.len();
    if t_max == 0 {
        return Vec::new();
    }
    let stats = model.stats();
    let ln = |v: f64| {
        if v > 0.0 {
            v.ln()
        } else {
            f64::NEG_INFINITY
        }
    };

    // delta[c] = best log-probability of any path ending in concept c;
    // back[t][c] = predecessor of c at time t.
    let mut delta: Vec<f64> = (0..n)
        .map(|c| {
            let (x, y) = records[0];
            ln(1.0 / n as f64) + ln(model.concepts()[c].psi(x, y))
        })
        .collect();
    let mut back: Vec<Vec<u32>> = Vec::with_capacity(t_max);
    back.push((0..n as u32).collect()); // unused for t = 0

    let mut next = vec![0.0f64; n];
    for &(x, y) in &records[1..] {
        let mut back_t = vec![0u32; n];
        for (c, slot) in next.iter_mut().enumerate() {
            let mut best = f64::NEG_INFINITY;
            let mut best_i = 0u32;
            for (i, &d) in delta.iter().enumerate() {
                let cand = d + ln(stats.chi(i, c));
                if cand > best {
                    best = cand;
                    best_i = i as u32;
                }
            }
            *slot = best + ln(model.concepts()[c].psi(x, y));
            back_t[c] = best_i;
        }
        std::mem::swap(&mut delta, &mut next);
        back.push(back_t);
    }

    // Backtrack.
    let mut path = vec![0usize; t_max];
    let mut c = delta
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    for t in (0..t_max).rev() {
        path[t] = c;
        if t > 0 {
            c = back[t][c] as usize;
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionStats;
    use crate::Concept;
    use hom_classifiers::MajorityClassifier;
    use hom_data::{Attribute, Schema};
    use std::sync::Arc;

    fn toy_model() -> HighOrderModel {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts = vec![
            Concept {
                id: 0,
                model: Arc::new(MajorityClassifier::from_counts(&[10, 0])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
            Concept {
                id: 1,
                model: Arc::new(MajorityClassifier::from_counts(&[0, 10])),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            },
        ];
        let stats = TransitionStats::from_occurrences(2, &[(0, 50), (1, 50)]);
        HighOrderModel::from_parts(schema, concepts, stats)
    }

    #[test]
    fn empty_input_empty_path() {
        let model = toy_model();
        assert!(most_likely_path(&model, &[]).is_empty());
    }

    #[test]
    fn recovers_segmented_sequence() {
        let model = toy_model();
        let x = [0.0f64];
        // 10 records of class a, then 10 of class b
        let records: Vec<(&[f64], u32)> = (0..20).map(|t| (&x[..], u32::from(t >= 10))).collect();
        let path = most_likely_path(&model, &records);
        assert_eq!(&path[..10], &[0; 10]);
        assert_eq!(&path[10..], &[1; 10]);
    }

    #[test]
    fn smooths_single_record_noise() {
        let model = toy_model();
        let x = [0.0f64];
        // one noisy 'b' in the middle of an 'a' run: with Len = 50 the
        // switch penalty outweighs one misclassified record
        let labels = [0u32, 0, 0, 0, 1, 0, 0, 0, 0];
        let records: Vec<(&[f64], u32)> = labels.iter().map(|&y| (&x[..], y)).collect();
        let path = most_likely_path(&model, &records);
        assert_eq!(path, vec![0; 9]);
    }

    #[test]
    fn persistent_change_is_detected() {
        let model = toy_model();
        let x = [0.0f64];
        let labels = [0u32, 0, 0, 1, 1, 1, 1, 1, 1];
        let records: Vec<(&[f64], u32)> = labels.iter().map(|&y| (&x[..], y)).collect();
        let path = most_likely_path(&model, &records);
        assert_eq!(path[0], 0);
        assert_eq!(path[8], 1);
    }
}
