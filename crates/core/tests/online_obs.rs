//! Observability of the online filter's early-terminated prediction
//! (§III-C): prune events must fire exactly when the posterior mass
//! outside the consulted prefix is too small to change the argmax — and
//! pruning must never change a prediction.

use std::sync::Arc;

use hom_classifiers::MajorityClassifier;
use hom_core::{Concept, HighOrderModel, OnlineOptions, OnlinePredictor, TransitionStats};
use hom_data::{Attribute, Schema};
use hom_obs::{Obs, OwnedEvent, Recorder};

/// Four concepts, each always predicting a distinct class with error 0.1.
/// With one-hot concept predictions the pruned enumeration's margin test
/// depends only on the sorted active probabilities, so the expected
/// consultation count can be mirrored exactly from `concept_probs()`.
fn four_concept_model() -> Arc<HighOrderModel> {
    let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b", "c", "d"]);
    let concepts = (0..4)
        .map(|id| {
            let mut counts = [0usize; 4];
            counts[id] = 10;
            Concept {
                id,
                model: Arc::new(MajorityClassifier::from_counts(&counts)),
                err: 0.1,
                n_records: 100,
                n_occurrences: 1,
            }
        })
        .collect();
    let stats = TransitionStats::from_occurrences(4, &[(0, 100), (1, 100), (2, 100), (3, 100)]);
    Arc::new(HighOrderModel::from_parts(schema, concepts, stats))
}

/// Mirror of the §III-C margin rule for one-hot concepts: how many
/// concepts the enumeration consults, given the active probabilities.
/// `None` when a margin comparison is too close to call (float slack
/// between this mirror and the incremental bookkeeping inside the
/// predictor could then legitimately disagree).
fn expected_consulted(priors: &[f64]) -> Option<usize> {
    let mut p: Vec<f64> = priors.to_vec();
    p.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = p.iter().sum();
    let mut consulted = 0.0;
    for (k, &pk) in p.iter().enumerate().take(p.len() - 1) {
        consulted += pk;
        let remaining = total - consulted;
        // Scores after k+1 one-hot concepts: p[0..=k] on distinct
        // classes, zero elsewhere.
        let margin = if k == 0 { p[0] } else { p[0] - p[1] };
        if (margin - remaining).abs() < 1e-9 {
            return None;
        }
        if margin > remaining {
            return Some(k + 1);
        }
    }
    // Reaching the last concept is a full enumeration whether or not the
    // final (remaining == 0) margin test fires: nothing is skipped.
    Some(p.len())
}

fn prune_events(recorder: &Recorder) -> Vec<u64> {
    recorder
        .events()
        .iter()
        .filter_map(|e| match e {
            OwnedEvent::Count { name, n, .. } if name == "online.prune" => Some(*n),
            _ => None,
        })
        .collect()
}

#[test]
fn prune_events_fire_exactly_on_early_termination() {
    let model = four_concept_model();
    let recorder = Arc::new(Recorder::new());
    let mut traced = OnlinePredictor::with_options(
        Arc::clone(&model),
        &OnlineOptions {
            sink: Obs::new(Arc::clone(&recorder)),
        },
    );
    let mut plain =
        OnlinePredictor::with_options(Arc::clone(&model), &OnlineOptions { sink: Obs::none() });

    // Three regimes: uniform start (no pruning possible), concentration
    // on concept 1, then a switch to concept 3 — covering prune-on and
    // prune-off records.
    let labels: Vec<u32> = std::iter::repeat_n(1, 30)
        .chain(std::iter::repeat_n(3, 30))
        .collect();
    let x = [0.0];
    let mut checked_pruned = 0usize;
    let mut checked_unpruned = 0usize;
    for &y in &labels {
        let expected = expected_consulted(traced.concept_probs());
        let before = prune_events(&recorder).len();
        let pred = traced.predict_pruned(&x);
        // Pruning must never change the prediction (full ensemble, Eq. 10).
        assert_eq!(pred, plain.predict(&x), "pruned prediction diverged");
        let events = prune_events(&recorder);
        match expected {
            Some(k) if k < 4 => {
                assert_eq!(
                    events.len(),
                    before + 1,
                    "early termination at {k} consults must emit one prune event"
                );
                assert_eq!(
                    events[before],
                    (4 - k) as u64,
                    "prune event must carry the number of skipped concepts"
                );
                checked_pruned += 1;
            }
            Some(_) => {
                assert_eq!(
                    events.len(),
                    before,
                    "full enumeration must not emit a prune event"
                );
                checked_unpruned += 1;
            }
            None => {} // margin within float slack of the threshold
        }
        traced.observe(&x, y);
        plain.observe(&x, y);
    }
    // The regimes above must actually exercise both behaviors.
    assert!(checked_pruned > 0, "no record ever pruned");
    assert!(checked_unpruned > 0, "no record ran the full enumeration");

    // Flushed totals agree with the per-record events.
    let n_prunes = prune_events(&recorder).len() as u64;
    traced.flush_trace();
    assert_eq!(
        recorder.counter_total("online.records_predicted"),
        labels.len() as u64
    );
    assert_eq!(
        recorder.counter_total("online.records_observed"),
        labels.len() as u64
    );
    assert_eq!(recorder.counter_total("online.pruned_records"), n_prunes);
    let consulted = recorder.counter_total("online.concepts_consulted");
    assert!(
        (labels.len() as u64..=4 * labels.len() as u64).contains(&consulted),
        "consulted = {consulted}"
    );

    // The posterior trace has one sample per observed record, each a
    // normalized distribution over the four concepts.
    let trace = recorder.series("online.posterior");
    assert_eq!(trace.len(), labels.len());
    for (_, posterior) in &trace {
        assert_eq!(posterior.len(), 4);
        let sum: f64 = posterior.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn step_records_latency_and_flushes_on_drop() {
    let model = four_concept_model();
    let recorder = Arc::new(Recorder::new());
    {
        let mut p = OnlinePredictor::with_options(
            model,
            &OnlineOptions {
                sink: Obs::new(Arc::clone(&recorder)),
            },
        );
        for t in 0..25u32 {
            p.step(&[0.0], t % 4);
        }
        // No explicit flush: drop must emit the accumulated metrics.
    }
    let latency = recorder.merged_hist("online.latency_ns");
    assert_eq!(latency.count(), 25);
    assert!(latency.max() >= latency.min());
    assert_eq!(recorder.counter_total("online.records_predicted"), 25);
    assert_eq!(recorder.counter_total("online.records_observed"), 25);
}

#[test]
fn unobserved_predictor_emits_nothing() {
    let model = four_concept_model();
    let recorder = Arc::new(Recorder::new());
    {
        // A recorder exists but the predictor is not wired to it.
        let mut p = OnlinePredictor::with_options(model, &OnlineOptions { sink: Obs::none() });
        for t in 0..10u32 {
            p.step(&[0.0], t % 4);
        }
        p.flush_trace();
    }
    assert!(recorder.is_empty());
}
