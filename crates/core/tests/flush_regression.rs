//! Regression tests for the online filter's trace-flush path: an
//! observed predictor that is dropped without an explicit
//! [`OnlinePredictor::flush_trace`] must emit its batched metrics
//! **exactly once** — and an explicit flush followed by the drop must
//! not emit them a second time.

use std::sync::Arc;

use hom_classifiers::MajorityClassifier;
use hom_core::{Concept, HighOrderModel, OnlineOptions, OnlinePredictor, TransitionStats};
use hom_data::{Attribute, Schema};
use hom_obs::{Obs, OwnedEvent, Recorder};

fn tiny_model() -> Arc<HighOrderModel> {
    let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
    let concepts = (0..2)
        .map(|id| Concept {
            id,
            model: Arc::new(MajorityClassifier::from_counts(if id == 0 {
                &[5, 1]
            } else {
                &[1, 5]
            })),
            err: 0.2,
            n_records: 50,
            n_occurrences: 1,
        })
        .collect();
    let stats = TransitionStats::from_occurrences(2, &[(0, 40), (1, 40)]);
    Arc::new(HighOrderModel::from_parts(schema, concepts, stats))
}

/// How many separate `Count` events the recorder holds for `name` —
/// distinct from `counter_total`, which sums them and so cannot tell
/// "emitted once" from "emitted twice with a zero".
fn count_events(recorder: &Recorder, name: &str) -> usize {
    recorder
        .events()
        .iter()
        .filter(|e| matches!(e, OwnedEvent::Count { name: n, .. } if n == name))
        .count()
}

fn traced(model: &Arc<HighOrderModel>, recorder: &Arc<Recorder>) -> OnlinePredictor {
    OnlinePredictor::with_options(
        Arc::clone(model),
        &OnlineOptions {
            sink: Obs::new(Arc::clone(recorder)),
        },
    )
}

#[test]
fn drop_without_explicit_flush_emits_batched_metrics_exactly_once() {
    let model = tiny_model();
    let recorder = Arc::new(Recorder::new());
    {
        let mut p = traced(&model, &recorder);
        for t in 0..30u32 {
            p.step(&[0.4], t % 2);
        }
        // No flush_trace() here: the Drop impl is the only flush.
    }
    for name in [
        "online.records_predicted",
        "online.records_observed",
        "online.concepts_consulted",
    ] {
        assert_eq!(count_events(&recorder, name), 1, "{name} events");
    }
    assert_eq!(recorder.counter_total("online.records_predicted"), 30);
    assert_eq!(recorder.counter_total("online.records_observed"), 30);
    assert_eq!(recorder.merged_hist("online.latency_ns").count(), 30);
}

#[test]
fn explicit_flush_then_drop_does_not_double_emit() {
    let model = tiny_model();
    let recorder = Arc::new(Recorder::new());
    {
        let mut p = traced(&model, &recorder);
        for t in 0..20u32 {
            p.step(&[0.4], t % 2);
        }
        p.flush_trace();
        // Drop happens right after: the batch is already empty.
    }
    for name in ["online.records_predicted", "online.records_observed"] {
        assert_eq!(
            count_events(&recorder, name),
            1,
            "{name} must not be re-emitted by Drop after flush_trace()"
        );
    }
    assert_eq!(recorder.counter_total("online.records_predicted"), 20);
    assert_eq!(recorder.counter_total("online.records_observed"), 20);
}

#[test]
fn flush_mid_stream_batches_twice_with_correct_totals() {
    let model = tiny_model();
    let recorder = Arc::new(Recorder::new());
    {
        let mut p = traced(&model, &recorder);
        for t in 0..10u32 {
            p.step(&[0.4], t % 2);
        }
        p.flush_trace();
        for t in 0..15u32 {
            p.step(&[0.4], t % 2);
        }
        // Second batch flushed by Drop.
    }
    assert_eq!(count_events(&recorder, "online.records_predicted"), 2);
    assert_eq!(recorder.counter_total("online.records_predicted"), 25);
    assert_eq!(recorder.counter_total("online.records_observed"), 25);
    assert_eq!(recorder.merged_hist("online.latency_ns").count(), 25);
}

#[test]
fn idle_predictor_flushes_nothing_on_drop() {
    let model = tiny_model();
    let recorder = Arc::new(Recorder::new());
    {
        // Constructed, never used: Drop must not emit empty batches.
        let _p = traced(&model, &recorder);
    }
    assert!(recorder.is_empty(), "idle predictor emitted events on drop");
}

#[test]
fn state_handoff_flushes_the_donor_exactly_once() {
    let model = tiny_model();
    let recorder = Arc::new(Recorder::new());
    let state = {
        let mut p = traced(&model, &recorder);
        for t in 0..12u32 {
            p.step(&[0.4], t % 2);
        }
        // into_state() flushes before surrendering the filter state…
        p.into_state()
    };
    // …and the Drop that follows must not flush again.
    assert_eq!(count_events(&recorder, "online.records_predicted"), 1);
    assert_eq!(recorder.counter_total("online.records_predicted"), 12);

    // The successor starts a fresh batch of its own.
    {
        let mut p = OnlinePredictor::from_state(
            Arc::clone(&model),
            state,
            &OnlineOptions {
                sink: Obs::new(Arc::clone(&recorder)),
            },
        );
        for t in 0..5u32 {
            p.step(&[0.4], t % 2);
        }
    }
    assert_eq!(count_events(&recorder, "online.records_predicted"), 2);
    assert_eq!(recorder.counter_total("online.records_predicted"), 17);
}
