//! Property-based tests of the bare [`FilterState`] filter: on random
//! models and label sequences, the posterior stays a valid probability
//! distribution after **every** transition, and §III-C pruned prediction
//! never changes the predicted class.

use std::sync::Arc;

use hom_classifiers::MajorityClassifier;
use hom_core::{Concept, FilterState, HighOrderModel, TransitionStats};
use hom_data::{Attribute, Schema};
use proptest::prelude::*;

/// Arbitrary occurrence sequences over up to 6 concepts, every concept
/// appearing at least once — the raw material for a random χ.
fn occurrences_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..=6).prop_flat_map(|n| {
        proptest::collection::vec((0usize..n, 1usize..400), n..40).prop_map(move |mut occ| {
            for c in 0..n {
                if !occ.iter().any(|&(oc, _)| oc == c) {
                    occ.push((c, 7));
                }
            }
            (n, occ)
        })
    })
}

/// A random high-order model: random χ plus concepts whose base
/// classifiers and error rates are drawn from the inputs.
fn random_model(n: usize, occ: &[(usize, usize)], errs: &[f64]) -> Arc<HighOrderModel> {
    let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
    let concepts: Vec<Concept> = (0..n)
        .map(|id| Concept {
            id,
            model: Arc::new(MajorityClassifier::from_counts(if id % 2 == 0 {
                &[3, 1]
            } else {
                &[1, 3]
            })),
            err: errs[id],
            n_records: 10,
            n_occurrences: 1,
        })
        .collect();
    let stats = TransitionStats::from_occurrences(n, occ);
    Arc::new(HighOrderModel::from_parts(schema, concepts, stats))
}

fn assert_valid_distribution(p: &[f64], what: &str) -> Result<(), TestCaseError> {
    for (i, &v) in p.iter().enumerate() {
        prop_assert!(v.is_finite() && v >= 0.0, "{what}[{i}] = {v}");
    }
    let sum: f64 = p.iter().sum();
    prop_assert!((sum - 1.0).abs() < 1e-9, "{what} sums to {sum}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both the prior and the posterior remain valid distributions after
    /// every advance and every observe, for any label sequence.
    #[test]
    fn posterior_is_always_a_distribution(
        (n, occ) in occurrences_strategy(),
        errs in proptest::collection::vec(0.01f64..0.49, 6),
        steps in proptest::collection::vec((0.0f64..1.0, 0u32..2, 0usize..4), 1..120),
    ) {
        let model = random_model(n, &occ, &errs);
        let mut state = FilterState::new(&model);
        assert_valid_distribution(state.prior(), "initial prior")?;
        assert_valid_distribution(state.posterior(), "initial posterior")?;
        for (x, y, skip) in steps {
            // unobserved gaps exercise the pure χ advance
            state.advance_by(&model, skip);
            assert_valid_distribution(state.prior(), "prior after advance")?;
            assert_valid_distribution(state.posterior(), "posterior after advance")?;
            state.observe(&model, &[x], y);
            assert_valid_distribution(state.prior(), "prior after observe")?;
            assert_valid_distribution(state.posterior(), "posterior after observe")?;
            prop_assert!(state.current_concept() < n);
        }
    }

    /// §III-C pruning is exact: at every reachable filter state the
    /// pruned prediction equals the full-ensemble prediction, and it
    /// never consults more concepts than exist.
    #[test]
    fn pruning_never_changes_the_argmax(
        (n, occ) in occurrences_strategy(),
        errs in proptest::collection::vec(0.01f64..0.49, 6),
        evidence in proptest::collection::vec((0.0f64..1.0, 0u32..2), 1..80),
    ) {
        let model = random_model(n, &occ, &errs);
        let mut full = FilterState::new(&model);
        let mut pruned = FilterState::new(&model);
        for (x, y) in evidence {
            let want = full.predict(&model, &[x]);
            let (got, consulted) = pruned.predict_pruned(&model, &[x]);
            prop_assert_eq!(got, want, "pruned argmax diverged");
            prop_assert!(consulted >= 1 && consulted <= n, "consulted {consulted} of {n}");
            full.observe(&model, &[x], y);
            pruned.observe(&model, &[x], y);
            // both replicas walked the same evidence: identical state
            prop_assert_eq!(full.posterior(), pruned.posterior());
        }
    }

    /// The prune order is a permutation of the concepts sorted by
    /// descending prior, after any history.
    #[test]
    fn prune_order_is_a_descending_permutation(
        (n, occ) in occurrences_strategy(),
        errs in proptest::collection::vec(0.01f64..0.49, 6),
        evidence in proptest::collection::vec((0.0f64..1.0, 0u32..2), 0..60),
    ) {
        let model = random_model(n, &occ, &errs);
        let mut state = FilterState::new(&model);
        for (x, y) in evidence {
            state.observe(&model, &[x], y);
        }
        let order = state.order().to_vec();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>(), "not a permutation");
        for w in order.windows(2) {
            prop_assert!(
                state.prior()[w[0] as usize] >= state.prior()[w[1] as usize],
                "order not descending by prior"
            );
        }
    }
}
