//! Property-based tests of the high-order model invariants.

use std::sync::Arc;

use hom_classifiers::MajorityClassifier;
use hom_core::{Concept, HighOrderModel, OnlinePredictor, TransitionStats};
use hom_data::{Attribute, Schema};
use proptest::prelude::*;

/// Arbitrary occurrence sequences over up to 5 concepts, with every
/// concept appearing at least once.
fn occurrences_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..=5).prop_flat_map(|n| {
        proptest::collection::vec((0usize..n, 1usize..500), n..40).prop_map(move |mut occ| {
            // guarantee every concept occurs
            for c in 0..n {
                if !occ.iter().any(|&(oc, _)| oc == c) {
                    occ.push((c, 10));
                }
            }
            (n, occ)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// χ is a stochastic matrix: non-negative entries, rows summing to 1.
    #[test]
    fn chi_is_stochastic((n, occ) in occurrences_strategy()) {
        let stats = TransitionStats::from_occurrences(n, &occ);
        for i in 0..n {
            let mut sum = 0.0;
            for j in 0..n {
                let x = stats.chi(i, j);
                prop_assert!((0.0..=1.0).contains(&x), "chi({i},{j}) = {x}");
                sum += x;
            }
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    /// The prior update (Eq. 5) preserves probability mass for any input
    /// distribution.
    #[test]
    fn advance_preserves_mass(
        (n, occ) in occurrences_strategy(),
        raw in proptest::collection::vec(0.0f64..1.0, 5),
    ) {
        let stats = TransitionStats::from_occurrences(n, &occ);
        let total: f64 = raw[..n].iter().sum();
        prop_assume!(total > 0.0);
        let p: Vec<f64> = raw[..n].iter().map(|&v| v / total).collect();
        let mut out = vec![0.0; n];
        stats.advance(&p, &mut out);
        prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
    }

    /// Frequencies sum to one and mean lengths are at least one record.
    #[test]
    fn len_freq_consistency((n, occ) in occurrences_strategy()) {
        let stats = TransitionStats::from_occurrences(n, &occ);
        let freq_sum: f64 = (0..n).map(|c| stats.freq(c)).sum();
        prop_assert!((freq_sum - 1.0).abs() < 1e-9);
        for c in 0..n {
            prop_assert!(stats.len(c) >= 1.0);
        }
    }

    /// The online filter keeps a normalized distribution under arbitrary
    /// labeled evidence, and never assigns NaN.
    #[test]
    fn online_filter_stays_normalized(
        (n, occ) in occurrences_strategy(),
        evidence in proptest::collection::vec((0.0f64..1.0, 0u32..2), 1..200),
        errs in proptest::collection::vec(0.01f64..0.49, 5),
    ) {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts: Vec<Concept> = (0..n)
            .map(|id| Concept {
                id,
                // concept id parity decides its constant prediction
                model: Arc::new(MajorityClassifier::from_counts(
                    if id % 2 == 0 { &[1, 0] } else { &[0, 1] },
                )),
                err: errs[id],
                n_records: 10,
                n_occurrences: 1,
            })
            .collect();
        let stats = TransitionStats::from_occurrences(n, &occ);
        let model = Arc::new(HighOrderModel::from_parts(schema, concepts, stats));
        let mut p = OnlinePredictor::new(model);
        for (x, y) in evidence {
            let pred = p.step(&[x], y);
            prop_assert!(pred < 2);
            let sum: f64 = p.concept_probs().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
            prop_assert!(p.concept_probs().iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    /// Pruned and full ensemble predictions agree for every state the
    /// filter can reach (the §III-C bound is exact, not approximate).
    #[test]
    fn pruned_equals_full(
        (n, occ) in occurrences_strategy(),
        evidence in proptest::collection::vec((0.0f64..1.0, 0u32..2), 1..60),
    ) {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts: Vec<Concept> = (0..n)
            .map(|id| Concept {
                id,
                model: Arc::new(MajorityClassifier::from_counts(
                    if id % 2 == 0 { &[3, 1] } else { &[1, 3] },
                )),
                err: 0.1 + 0.05 * id as f64,
                n_records: 10,
                n_occurrences: 1,
            })
            .collect();
        let stats = TransitionStats::from_occurrences(n, &occ);
        let model = Arc::new(HighOrderModel::from_parts(schema, concepts, stats));
        let mut a = OnlinePredictor::new(Arc::clone(&model));
        let mut b = OnlinePredictor::new(model);
        for (x, y) in evidence {
            prop_assert_eq!(a.predict(&[x]), b.predict_pruned(&[x]));
            a.observe(&[x], y);
            b.observe(&[x], y);
        }
    }

    /// Viterbi output is a valid concept path of the right length.
    #[test]
    fn viterbi_path_is_valid(
        (n, occ) in occurrences_strategy(),
        labels in proptest::collection::vec(0u32..2, 0..100),
    ) {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let concepts: Vec<Concept> = (0..n)
            .map(|id| Concept {
                id,
                model: Arc::new(MajorityClassifier::from_counts(
                    if id % 2 == 0 { &[1, 0] } else { &[0, 1] },
                )),
                err: 0.2,
                n_records: 10,
                n_occurrences: 1,
            })
            .collect();
        let stats = TransitionStats::from_occurrences(n, &occ);
        let model = HighOrderModel::from_parts(schema, concepts, stats);
        let x = [0.5f64];
        let records: Vec<(&[f64], u32)> = labels.iter().map(|&y| (&x[..], y)).collect();
        let path = hom_core::viterbi::most_likely_path(&model, &records);
        prop_assert_eq!(path.len(), labels.len());
        prop_assert!(path.iter().all(|&c| c < n));
    }
}
