//! Zero-copy read access to subsets of a [`Dataset`].
//!
//! The concept-clustering algorithm partitions one historical dataset into
//! thousands of clusters, repeatedly merging them. Copying rows for each
//! cluster would dominate the build cost, so clusters hold index lists and
//! learners consume the [`Instances`] trait instead of concrete datasets.

use crate::dataset::Dataset;
use crate::schema::{ClassId, Schema};

/// Read-only access to a sequence of labeled records.
///
/// Implemented by [`Dataset`] (all records), [`FullView`] and [`IndexView`]
/// (an arbitrary subset, zero-copy). Learners take `&dyn Instances` so the
/// same code trains on owned datasets, holdout halves and cluster members.
pub trait Instances {
    /// Schema of the records.
    fn schema(&self) -> &Schema;
    /// Number of records in the view.
    fn len(&self) -> usize;
    /// Attribute values of the `i`-th record of the view.
    fn row(&self, i: usize) -> &[f64];
    /// Label of the `i`-th record of the view.
    fn label(&self, i: usize) -> ClassId;

    /// Whether the view is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of records per class.
    fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.schema().n_classes()];
        for i in 0..self.len() {
            counts[self.label(i) as usize] += 1;
        }
        counts
    }

    /// The most frequent class in the view (ties broken by lowest id);
    /// class 0 for an empty view.
    fn majority_class(&self) -> ClassId {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i as ClassId)
            .unwrap_or(0)
    }
}

impl Instances for Dataset {
    fn schema(&self) -> &Schema {
        Dataset::schema(self)
    }
    fn len(&self) -> usize {
        Dataset::len(self)
    }
    fn row(&self, i: usize) -> &[f64] {
        Dataset::row(self, i)
    }
    fn label(&self, i: usize) -> ClassId {
        Dataset::label(self, i)
    }
}

/// A view of an entire dataset (useful when an API wants a view type).
#[derive(Clone, Copy)]
pub struct FullView<'a> {
    data: &'a Dataset,
}

impl<'a> FullView<'a> {
    /// View all records of `data`.
    pub fn new(data: &'a Dataset) -> Self {
        FullView { data }
    }
}

impl Instances for FullView<'_> {
    fn schema(&self) -> &Schema {
        self.data.schema()
    }
    fn len(&self) -> usize {
        self.data.len()
    }
    fn row(&self, i: usize) -> &[f64] {
        self.data.row(i)
    }
    fn label(&self, i: usize) -> ClassId {
        self.data.label(i)
    }
}

/// A view of the records of a dataset selected by an index list.
///
/// Indices may appear in any order and need not be unique (bootstrap-style
/// views are allowed). The view borrows both the dataset and the index
/// slice; it never copies rows.
#[derive(Clone, Copy)]
pub struct IndexView<'a> {
    data: &'a Dataset,
    idx: &'a [u32],
}

impl<'a> IndexView<'a> {
    /// View the records of `data` at positions `idx`.
    ///
    /// # Panics
    /// Panics (in debug builds) if any index is out of range.
    pub fn new(data: &'a Dataset, idx: &'a [u32]) -> Self {
        debug_assert!(
            idx.iter().all(|&i| (i as usize) < data.len()),
            "index view contains out-of-range indices"
        );
        IndexView { data, idx }
    }

    /// The underlying index list.
    pub fn indices(&self) -> &'a [u32] {
        self.idx
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }
}

impl Instances for IndexView<'_> {
    fn schema(&self) -> &Schema {
        self.data.schema()
    }
    fn len(&self) -> usize {
        self.idx.len()
    }
    fn row(&self, i: usize) -> &[f64] {
        self.data.row(self.idx[i] as usize)
    }
    fn label(&self, i: usize) -> ClassId {
        self.data.label(self.idx[i] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn sample() -> Dataset {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b", "c"]);
        let mut d = Dataset::new(schema);
        d.push(&[0.0], 0);
        d.push(&[1.0], 1);
        d.push(&[2.0], 1);
        d.push(&[3.0], 2);
        d
    }

    #[test]
    fn dataset_is_instances() {
        let d = sample();
        let v: &dyn Instances = &d;
        assert_eq!(v.len(), 4);
        assert_eq!(v.row(2), &[2.0]);
        assert_eq!(v.label(3), 2);
        assert_eq!(v.class_counts(), vec![1, 2, 1]);
        assert_eq!(v.majority_class(), 1);
    }

    #[test]
    fn index_view_selects_and_reorders() {
        let d = sample();
        let idx = [3u32, 1, 1];
        let v = IndexView::new(&d, &idx);
        assert_eq!(v.len(), 3);
        assert_eq!(v.row(0), &[3.0]);
        assert_eq!(v.label(1), 1);
        assert_eq!(v.class_counts(), vec![0, 2, 1]);
    }

    #[test]
    fn full_view_mirrors_dataset() {
        let d = sample();
        let v = FullView::new(&d);
        assert_eq!(v.len(), d.len());
        assert_eq!(v.row(1), d.row(1));
    }

    #[test]
    fn majority_class_ties_break_low() {
        let d = sample();
        let idx = [0u32, 3];
        let v = IndexView::new(&d, &idx);
        // one record each of class 0 and 2 -> tie broken toward class 0
        assert_eq!(v.majority_class(), 0);
    }

    #[test]
    fn empty_view_majority_is_zero() {
        let d = sample();
        let idx: [u32; 0] = [];
        let v = IndexView::new(&d, &idx);
        assert!(v.is_empty());
        assert_eq!(v.majority_class(), 0);
    }
}
