//! Deterministic randomness helpers.
//!
//! Every stochastic component in the workspace (generators, holdout splits,
//! the shared shuffled sample of clustering step 2) takes an explicit `u64`
//! seed, and experiments derive per-component seeds from one master seed so
//! that a whole experiment is reproducible from a single number.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A seeded standard RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a master seed and a stream index, using the
/// SplitMix64 finalizer. Distinct `(seed, index)` pairs give well-separated
/// child seeds, so components never share random streams accidentally.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The indices `0..n` in random order.
pub fn shuffled_indices(n: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.shuffle(rng);
    idx
}

/// Split `0..n` into a random (train, test) pair of disjoint halves, as the
/// paper's holdout validation does (§II-B: "we randomly choose half of the
/// data for testing, and the remaining half for training").
///
/// For odd `n` the extra record goes to the training half, so both halves
/// are non-empty whenever `n >= 2`.
pub fn holdout_split(n: usize, rng: &mut StdRng) -> (Vec<u32>, Vec<u32>) {
    let idx = shuffled_indices(n, rng);
    let n_test = n / 2;
    let test = idx[..n_test].to_vec();
    let train = idx[n_test..].to_vec();
    (train, test)
}

/// Normalized Zipf weights `w_k ∝ 1/(k+1)^z` for ranks `0..n`.
pub fn zipf_weights(n: usize, z: f64) -> Vec<f64> {
    let mut w: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(z)).collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// Sample an index from a discrete distribution given by non-negative
/// weights (not necessarily normalized).
///
/// # Panics
/// Panics if all weights are zero or the slice is empty.
pub fn sample_discrete(weights: &[f64], rng: &mut StdRng) -> usize {
    use rand::Rng;
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "cannot sample from all-zero weights");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        use rand::Rng;
        let a: u64 = seeded(42).gen();
        let b: u64 = seeded(42).gen();
        let c: u64 = seeded(43).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derived_seeds_differ_per_index() {
        let s = 7;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_eq!(derive_seed(s, 5), derive_seed(s, 5));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded(1);
        let mut idx = shuffled_indices(100, &mut rng);
        idx.sort_unstable();
        assert_eq!(idx, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn holdout_split_is_disjoint_and_covers() {
        let mut rng = seeded(2);
        let (train, test) = holdout_split(11, &mut rng);
        assert_eq!(train.len(), 6); // odd record goes to train
        assert_eq!(test.len(), 5);
        let mut all: Vec<u32> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<u32>>());
    }

    #[test]
    fn holdout_split_two_records() {
        let mut rng = seeded(3);
        let (train, test) = holdout_split(2, &mut rng);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn zipf_weights_normalize_and_decay() {
        let w = zipf_weights(4, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2] && w[2] > w[3]);
        // z = 0 gives uniform weights
        let u = zipf_weights(4, 0.0);
        for x in u {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_discrete_respects_support() {
        let mut rng = seeded(4);
        for _ in 0..100 {
            let i = sample_discrete(&[0.0, 1.0, 0.0], &mut rng);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn sample_discrete_hits_all_positive_weights() {
        let mut rng = seeded(5);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[sample_discrete(&[1.0, 1.0, 1.0], &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn sample_discrete_rejects_zero_weights() {
        let mut rng = seeded(6);
        sample_discrete(&[0.0, 0.0], &mut rng);
    }
}
