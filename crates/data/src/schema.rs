//! Attribute and class definitions for a data stream.

use std::fmt;
use std::sync::Arc;

/// Identifier of a class label. Class ids are dense indices into
/// [`Schema::classes`].
pub type ClassId = u32;

/// The kind of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKind {
    /// A real-valued attribute.
    Numeric,
    /// A categorical attribute with a fixed, named set of values. Values are
    /// stored in datasets as their index (as an `f64` with integral value).
    Categorical { values: Vec<String> },
}

/// A single attribute of a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Human-readable attribute name.
    pub name: String,
    /// Numeric or categorical.
    pub kind: AttrKind,
}

impl Attribute {
    /// A numeric attribute with the given name.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Numeric,
        }
    }

    /// A categorical attribute with the given name and value names.
    pub fn categorical<S: Into<String>>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Categorical {
                values: values.into_iter().map(Into::into).collect(),
            },
        }
    }

    /// Number of distinct values for categorical attributes, `None` for
    /// numeric ones.
    pub fn cardinality(&self) -> Option<usize> {
        match &self.kind {
            AttrKind::Numeric => None,
            AttrKind::Categorical { values } => Some(values.len()),
        }
    }

    /// Whether this attribute is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self.kind, AttrKind::Categorical { .. })
    }
}

/// The schema of a stream: its attributes and its class labels.
///
/// Schemas are immutable once built and shared via [`Arc`]; every
/// [`crate::Dataset`] and generator holds a reference to the same schema
/// instance, which makes schema-compatibility checks cheap pointer
/// comparisons in the common case.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    classes: Vec<String>,
}

impl Schema {
    /// Build a schema from attributes and class names.
    ///
    /// # Panics
    /// Panics if there are no attributes, fewer than two classes, or a
    /// categorical attribute with no values — such schemas cannot describe a
    /// classification stream.
    pub fn new<S: Into<String>>(
        attrs: Vec<Attribute>,
        classes: impl IntoIterator<Item = S>,
    ) -> Arc<Self> {
        let classes: Vec<String> = classes.into_iter().map(Into::into).collect();
        assert!(!attrs.is_empty(), "schema requires at least one attribute");
        assert!(classes.len() >= 2, "schema requires at least two classes");
        for a in &attrs {
            if let Some(0) = a.cardinality() {
                panic!("categorical attribute {:?} has no values", a.name);
            }
        }
        Arc::new(Schema { attrs, classes })
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The attribute at index `i`.
    pub fn attr(&self, i: usize) -> &Attribute {
        &self.attrs[i]
    }

    /// All attributes.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// All class names.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Name of class `c`.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.classes[c as usize]
    }

    /// Cardinality of categorical attribute `i`, `None` if numeric.
    pub fn cardinality(&self, i: usize) -> Option<usize> {
        self.attrs[i].cardinality()
    }

    /// Whether attribute `i` is categorical.
    pub fn is_categorical(&self, i: usize) -> bool {
        self.attrs[i].is_categorical()
    }

    /// Check that a raw row is valid under this schema: correct width,
    /// finite numerics, and in-range integral codes for categoricals.
    pub fn validate_row(&self, row: &[f64]) -> Result<(), SchemaError> {
        if row.len() != self.attrs.len() {
            return Err(SchemaError::WrongWidth {
                expected: self.attrs.len(),
                got: row.len(),
            });
        }
        for (i, (&v, a)) in row.iter().zip(&self.attrs).enumerate() {
            match &a.kind {
                AttrKind::Numeric => {
                    if !v.is_finite() {
                        return Err(SchemaError::NonFinite { attr: i });
                    }
                }
                AttrKind::Categorical { values } => {
                    if v.fract() != 0.0 || v < 0.0 || (v as usize) >= values.len() {
                        return Err(SchemaError::BadCategory { attr: i, value: v });
                    }
                }
            }
        }
        Ok(())
    }

    /// Check that a class id is valid under this schema.
    pub fn validate_label(&self, y: ClassId) -> Result<(), SchemaError> {
        if (y as usize) < self.classes.len() {
            Ok(())
        } else {
            Err(SchemaError::BadLabel {
                label: y,
                n_classes: self.classes.len(),
            })
        }
    }
}

/// Validation failures for rows and labels.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// Row has the wrong number of attributes.
    WrongWidth { expected: usize, got: usize },
    /// A numeric attribute holds NaN or infinity.
    NonFinite { attr: usize },
    /// A categorical attribute holds a non-integral or out-of-range code.
    BadCategory { attr: usize, value: f64 },
    /// Class id out of range.
    BadLabel { label: ClassId, n_classes: usize },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::WrongWidth { expected, got } => {
                write!(f, "row has {got} attributes, schema expects {expected}")
            }
            SchemaError::NonFinite { attr } => {
                write!(f, "numeric attribute {attr} is not finite")
            }
            SchemaError::BadCategory { attr, value } => {
                write!(f, "categorical attribute {attr} has invalid code {value}")
            }
            SchemaError::BadLabel { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new(
            vec![
                Attribute::categorical("color", ["red", "green", "blue"]),
                Attribute::numeric("size"),
            ],
            ["neg", "pos"],
        )
    }

    #[test]
    fn basic_accessors() {
        let s = schema();
        assert_eq!(s.n_attrs(), 2);
        assert_eq!(s.n_classes(), 2);
        assert!(s.is_categorical(0));
        assert!(!s.is_categorical(1));
        assert_eq!(s.cardinality(0), Some(3));
        assert_eq!(s.cardinality(1), None);
        assert_eq!(s.class_name(1), "pos");
        assert_eq!(s.attr(0).name, "color");
    }

    #[test]
    fn validate_good_row() {
        let s = schema();
        assert_eq!(s.validate_row(&[2.0, 0.5]), Ok(()));
        assert_eq!(s.validate_label(1), Ok(()));
    }

    #[test]
    fn validate_rejects_wrong_width() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&[1.0]),
            Err(SchemaError::WrongWidth {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn validate_rejects_nan() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&[0.0, f64::NAN]),
            Err(SchemaError::NonFinite { attr: 1 })
        ));
    }

    #[test]
    fn validate_rejects_bad_category() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&[3.0, 0.0]),
            Err(SchemaError::BadCategory { attr: 0, .. })
        ));
        assert!(matches!(
            s.validate_row(&[0.5, 0.0]),
            Err(SchemaError::BadCategory { attr: 0, .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_label() {
        let s = schema();
        assert!(matches!(
            s.validate_label(2),
            Err(SchemaError::BadLabel {
                label: 2,
                n_classes: 2
            })
        ));
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        Schema::new(vec![Attribute::numeric("x")], ["only"]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn rejects_empty_attrs() {
        Schema::new(vec![], ["a", "b"]);
    }

    #[test]
    fn error_display_is_informative() {
        let s = schema();
        let e = s.validate_row(&[1.0]).unwrap_err();
        assert!(e.to_string().contains("expects 2"));
    }
}
