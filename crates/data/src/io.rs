//! CSV import/export for datasets.
//!
//! The paper's third benchmark is the real KDDCUP'99 network-intrusion
//! dump, which cannot be shipped with this repository. This module lets a
//! user who *has* the file (`kddcup.data`, comma-separated, label last)
//! load it into a [`Dataset`] and run the experiments against the genuine
//! stream instead of the synthetic stand-in. It is generic: any
//! comma/TSV-style file with one record per line works.
//!
//! Schema handling: pass an explicit [`Schema`] to validate against, or
//! let [`read_csv`] infer one — a column whose every value parses as a
//! float becomes numeric, anything else becomes categorical with codes
//! assigned in order of first appearance; the designated class column
//! supplies the class names.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

use crate::dataset::Dataset;
use crate::schema::{Attribute, ClassId, Schema};

/// Options for [`read_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first line is a header naming the attributes.
    pub has_header: bool,
    /// Index of the class column; `None` means the last column (the
    /// KDDCUP'99 layout).
    pub class_column: Option<usize>,
    /// Trailing characters stripped from each field (KDDCUP'99 labels end
    /// with a `.`).
    pub trim_chars: Vec<char>,
    /// Read at most this many records (`None` = all).
    pub limit: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: false,
            class_column: None,
            trim_chars: vec!['.', ' ', '\r'],
            limit: None,
        }
    }
}

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// No data records found.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::FieldCount {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: {got} fields, expected {expected}")
            }
            CsvError::Empty => write!(f, "no data records in input"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Read a dataset from CSV text, inferring the schema.
///
/// Two passes over the parsed fields: the first determines each column's
/// kind (numeric iff every value parses as a finite float) and collects
/// categorical vocabularies and class names; the second encodes rows.
pub fn read_csv<R: Read>(reader: R, options: &CsvOptions) -> Result<Dataset, CsvError> {
    let mut lines = BufReader::new(reader).lines();
    let mut header: Option<Vec<String>> = None;
    if options.has_header {
        match lines.next() {
            Some(line) => {
                header = Some(
                    split_fields(&line?, options)
                        .map(|s| s.to_string())
                        .collect(),
                );
            }
            None => return Err(CsvError::Empty),
        }
    }

    // Pass 1: materialize all rows as strings (bounded by `limit`).
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, line) in lines.enumerate() {
        if options.limit.is_some_and(|l| rows.len() >= l) {
            break;
        }
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<String> = split_fields(&line, options)
            .map(|s| s.to_string())
            .collect();
        if let Some(first) = rows.first() {
            if fields.len() != first.len() {
                return Err(CsvError::FieldCount {
                    line: i + 1 + usize::from(options.has_header),
                    got: fields.len(),
                    expected: first.len(),
                });
            }
        }
        rows.push(fields);
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }

    let n_cols = rows[0].len();
    let class_col = options.class_column.unwrap_or(n_cols - 1);
    debug_assert!(class_col < n_cols);

    // Column kinds and vocabularies.
    let mut numeric = vec![true; n_cols];
    let mut vocab: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    let mut vocab_index: Vec<HashMap<String, usize>> = vec![HashMap::new(); n_cols];
    for row in &rows {
        for (c, field) in row.iter().enumerate() {
            if c != class_col && numeric[c] {
                numeric[c] = field.parse::<f64>().is_ok_and(f64::is_finite);
            }
        }
    }
    for row in &rows {
        for (c, field) in row.iter().enumerate() {
            if (c == class_col || !numeric[c]) && !vocab_index[c].contains_key(field) {
                vocab_index[c].insert(field.clone(), vocab[c].len());
                vocab[c].push(field.clone());
            }
        }
    }

    // Schema: attributes in column order, class column skipped.
    let attrs: Vec<Attribute> = (0..n_cols)
        .filter(|&c| c != class_col)
        .map(|c| {
            let name = header
                .as_ref()
                .map(|h| h[c].clone())
                .unwrap_or_else(|| format!("col{c}"));
            if numeric[c] {
                Attribute::numeric(name)
            } else {
                Attribute::categorical(name, vocab[c].iter().cloned())
            }
        })
        .collect();
    let mut classes = vocab[class_col].clone();
    if classes.len() < 2 {
        // A single-class file still needs a valid schema; add a phantom
        // negative class so downstream learners stay well-formed.
        classes.push("__other__".to_string());
    }
    let schema = Schema::new(attrs, classes);

    // Pass 2: encode.
    let mut data = Dataset::with_capacity(Arc::clone(&schema), rows.len());
    let mut buf = vec![0.0f64; n_cols - 1];
    for row in &rows {
        let mut k = 0;
        for (c, field) in row.iter().enumerate() {
            if c == class_col {
                continue;
            }
            buf[k] = if numeric[c] {
                field.parse::<f64>().expect("checked in pass 1")
            } else {
                vocab_index[c][field] as f64
            };
            k += 1;
        }
        let label = vocab_index[class_col][&row[class_col]] as ClassId;
        data.push(&buf, label);
    }
    Ok(data)
}

fn split_fields<'a>(line: &'a str, options: &'a CsvOptions) -> impl Iterator<Item = &'a str> + 'a {
    line.split(options.delimiter)
        .map(move |f| f.trim_matches(|ch| options.trim_chars.contains(&ch)))
}

/// Write a dataset as CSV (class column last, categorical values and
/// class names written symbolically). The output round-trips through
/// [`read_csv`].
pub fn write_csv<W: Write>(data: &Dataset, mut writer: W) -> std::io::Result<()> {
    let schema = data.schema();
    for (row, label) in data.iter() {
        let mut first = true;
        for (a, &v) in row.iter().enumerate() {
            if !first {
                write!(writer, ",")?;
            }
            first = false;
            match schema.attr(a).kind {
                crate::schema::AttrKind::Numeric => write!(writer, "{v}")?,
                crate::schema::AttrKind::Categorical { ref values } => {
                    write!(writer, "{}", values[v as usize])?
                }
            }
        }
        writeln!(writer, ",{}", schema.class_name(label))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
0.5,tcp,http,1
1.5,udp,dns,0
2.5,tcp,http,1
3.5,icmp,dns,0
";

    #[test]
    fn infers_mixed_schema() {
        let d = read_csv(SAMPLE.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(d.len(), 4);
        let s = d.schema();
        assert_eq!(s.n_attrs(), 3);
        assert!(!s.is_categorical(0)); // 0.5, 1.5 … numeric
        assert!(s.is_categorical(1)); // tcp/udp/icmp
        assert!(s.is_categorical(2)); // http/dns
        assert_eq!(s.n_classes(), 2); // "1" first-seen => class 0
        assert_eq!(s.class_name(0), "1");
        assert_eq!(d.row(0), &[0.5, 0.0, 0.0]);
        assert_eq!(d.label(1), 1);
        assert_eq!(d.row(3), &[3.5, 2.0, 1.0]);
    }

    #[test]
    fn kdd_style_trailing_dot_is_trimmed() {
        let text = "1,tcp,normal.\n2,udp,smurf.\n";
        let d = read_csv(text.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(d.schema().class_name(0), "normal");
        assert_eq!(d.schema().class_name(1), "smurf");
    }

    #[test]
    fn header_names_attributes() {
        let text = "duration,proto,label\n1,tcp,a\n2,udp,b\n";
        let d = read_csv(
            text.as_bytes(),
            &CsvOptions {
                has_header: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.schema().attr(0).name, "duration");
        assert_eq!(d.schema().attr(1).name, "proto");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn class_column_override() {
        let text = "a,1,x\nb,2,x\na,3,y\n";
        let d = read_csv(
            text.as_bytes(),
            &CsvOptions {
                class_column: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.schema().n_classes(), 2); // a, b
        assert_eq!(d.schema().n_attrs(), 2); // the numeric and the x/y col
        assert_eq!(d.label(1), 1);
    }

    #[test]
    fn limit_caps_records() {
        let d = read_csv(
            SAMPLE.as_bytes(),
            &CsvOptions {
                limit: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "1,a,0\n2,b\n";
        let err = read_csv(text.as_bytes(), &CsvOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::FieldCount {
                line: 2,
                got: 2,
                expected: 3
            }
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            read_csv("".as_bytes(), &CsvOptions::default()),
            Err(CsvError::Empty)
        ));
        assert!(matches!(
            read_csv("\n  \n".as_bytes(), &CsvOptions::default()),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn single_class_gets_phantom_negative() {
        let text = "1,x\n2,x\n";
        let d = read_csv(text.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(d.schema().n_classes(), 2);
        assert_eq!(d.class_counts(), vec![2, 0]);
    }

    #[test]
    fn roundtrip_write_read() {
        let d = read_csv(SAMPLE.as_bytes(), &CsvOptions::default()).unwrap();
        let mut out = Vec::new();
        write_csv(&d, &mut out).unwrap();
        let d2 = read_csv(out.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(d2.len(), d.len());
        for i in 0..d.len() {
            assert_eq!(d2.row(i), d.row(i));
            assert_eq!(
                d2.schema().class_name(d2.label(i)),
                d.schema().class_name(d.label(i))
            );
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::FieldCount {
            line: 7,
            got: 2,
            expected: 3,
        };
        assert!(e.to_string().contains("line 7"));
    }
}
