//! Pull-based labeled stream abstraction.
//!
//! Generators produce an endless sequence of [`StreamRecord`]s. Each record
//! carries the generator's ground-truth concept id — invisible to the
//! algorithms, but used by the evaluation harness to align error curves on
//! concept-change points (paper Figs. 5–6) and to audit discovered concept
//! counts (paper Table IV).

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::schema::{ClassId, Schema};

/// One record of a labeled stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecord {
    /// Attribute values (width = schema attribute count).
    pub x: Box<[f64]>,
    /// True class label.
    pub y: ClassId,
    /// Ground-truth id of the stable concept that generated this record.
    /// During a gradual drift the generator reports the *target* concept.
    pub concept: usize,
    /// Whether this record was generated mid-drift (between two stable
    /// concepts). Always `false` for abrupt-shift generators.
    pub drifting: bool,
}

/// A source of labeled records with ground-truth concept annotations.
pub trait StreamSource {
    /// Schema of the records produced.
    fn schema(&self) -> &Arc<Schema>;
    /// Produce the next record.
    fn next_record(&mut self) -> StreamRecord;
    /// Number of distinct stable concepts this source can emit, if known.
    fn n_concepts(&self) -> Option<usize> {
        None
    }
}

/// Draw `n` records from `source` into a dataset plus per-record concept
/// tags (the "historical dataset" of the paper's build phase).
pub fn collect(source: &mut dyn StreamSource, n: usize) -> (Dataset, Vec<usize>) {
    let mut data = Dataset::with_capacity(Arc::clone(source.schema()), n);
    let mut concepts = Vec::with_capacity(n);
    for _ in 0..n {
        let r = source.next_record();
        data.push(&r.x, r.y);
        concepts.push(r.concept);
    }
    (data, concepts)
}

/// An adapter that replays a fixed dataset (with concept tags) as a stream.
/// Useful in tests and for feeding recorded data to online algorithms.
pub struct ReplaySource {
    data: Dataset,
    concepts: Vec<usize>,
    pos: usize,
    schema: Arc<Schema>,
}

impl ReplaySource {
    /// Replay `data`; `concepts` must be per-record tags of the same length
    /// (use zeros when no ground truth exists).
    ///
    /// # Panics
    /// Panics if lengths differ or the dataset is empty.
    pub fn new(data: Dataset, concepts: Vec<usize>) -> Self {
        assert_eq!(data.len(), concepts.len(), "one concept tag per record");
        assert!(!data.is_empty(), "cannot replay an empty dataset");
        let schema = Arc::clone(data.schema());
        ReplaySource {
            data,
            concepts,
            pos: 0,
            schema,
        }
    }
}

impl StreamSource for ReplaySource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Replays records in order, wrapping around at the end.
    fn next_record(&mut self) -> StreamRecord {
        let i = self.pos;
        self.pos = (self.pos + 1) % self.data.len();
        StreamRecord {
            x: self.data.row(i).into(),
            y: self.data.label(i),
            concept: self.concepts[i],
            drifting: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn tiny() -> (Dataset, Vec<usize>) {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        d.push(&[1.0], 0);
        d.push(&[2.0], 1);
        (d, vec![7, 8])
    }

    #[test]
    fn replay_wraps_around() {
        let (d, c) = tiny();
        let mut s = ReplaySource::new(d, c);
        let r0 = s.next_record();
        assert_eq!((&*r0.x, r0.y, r0.concept), (&[1.0][..], 0, 7));
        let r1 = s.next_record();
        assert_eq!((&*r1.x, r1.y, r1.concept), (&[2.0][..], 1, 8));
        let r2 = s.next_record();
        assert_eq!(r2.concept, 7); // wrapped
    }

    #[test]
    fn collect_gathers_n() {
        let (d, c) = tiny();
        let mut s = ReplaySource::new(d, c);
        let (data, concepts) = collect(&mut s, 5);
        assert_eq!(data.len(), 5);
        assert_eq!(concepts, vec![7, 8, 7, 8, 7]);
        assert_eq!(data.label(4), 0);
    }

    #[test]
    #[should_panic(expected = "one concept tag per record")]
    fn replay_rejects_mismatched_tags() {
        let (d, _) = tiny();
        ReplaySource::new(d, vec![0]);
    }
}
