//! Owned, row-major storage of labeled records.

use std::sync::Arc;

use crate::schema::{ClassId, Schema, SchemaError};

/// An owned table of labeled records, stored row-major in one flat buffer.
///
/// Categorical attribute values are stored as their integer code widened to
/// `f64`, so a row is always a `&[f64]` of width [`Schema::n_attrs`]. This
/// keeps training loops free of per-value branching and makes a dataset one
/// contiguous allocation regardless of the attribute mix.
#[derive(Clone, Debug)]
pub struct Dataset {
    schema: Arc<Schema>,
    values: Vec<f64>,
    labels: Vec<ClassId>,
}

impl Dataset {
    /// An empty dataset under `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Dataset {
            schema,
            values: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// An empty dataset with room for `n` records.
    pub fn with_capacity(schema: Arc<Schema>, n: usize) -> Self {
        let width = schema.n_attrs();
        Dataset {
            schema,
            values: Vec::with_capacity(n * width),
            labels: Vec::with_capacity(n),
        }
    }

    /// The schema shared by all records.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Append a record, validating it against the schema.
    pub fn try_push(&mut self, row: &[f64], label: ClassId) -> Result<(), SchemaError> {
        self.schema.validate_row(row)?;
        self.schema.validate_label(label)?;
        self.values.extend_from_slice(row);
        self.labels.push(label);
        Ok(())
    }

    /// Append a record.
    ///
    /// # Panics
    /// Panics if the row or label is invalid under the schema.
    pub fn push(&mut self, row: &[f64], label: ClassId) {
        self.try_push(row, label).expect("invalid record");
    }

    /// The attribute values of record `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.schema.n_attrs();
        &self.values[i * w..(i + 1) * w]
    }

    /// The label of record `i`.
    pub fn label(&self, i: usize) -> ClassId {
        self.labels[i]
    }

    /// All labels, in record order.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Iterate `(row, label)` pairs in record order.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], ClassId)> + '_ {
        let w = self.schema.n_attrs();
        self.values.chunks_exact(w).zip(self.labels.iter().copied())
    }

    /// Append every record of `other`.
    ///
    /// # Panics
    /// Panics if the schemas differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert!(
            Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema,
            "cannot extend a dataset with records of a different schema"
        );
        self.values.extend_from_slice(&other.values);
        self.labels.extend_from_slice(&other.labels);
    }

    /// A new dataset containing the records at `indices`, in that order.
    pub fn select(&self, indices: &[u32]) -> Dataset {
        let mut out = Dataset::with_capacity(Arc::clone(&self.schema), indices.len());
        for &i in indices {
            let i = i as usize;
            out.values.extend_from_slice(self.row(i));
            out.labels.push(self.labels[i]);
        }
        out
    }

    /// The first `n` records as a new dataset (or all of them if shorter).
    pub fn head(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let w = self.schema.n_attrs();
        Dataset {
            schema: Arc::clone(&self.schema),
            values: self.values[..n * w].to_vec(),
            labels: self.labels[..n].to_vec(),
        }
    }

    /// Count of records per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.schema.n_classes()];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::new(
            vec![
                Attribute::numeric("x"),
                Attribute::categorical("c", ["a", "b"]),
            ],
            ["neg", "pos"],
        )
    }

    fn sample() -> Dataset {
        let mut d = Dataset::new(schema());
        d.push(&[0.1, 0.0], 0);
        d.push(&[0.9, 1.0], 1);
        d.push(&[0.5, 1.0], 0);
        d
    }

    #[test]
    fn push_and_access() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.row(1), &[0.9, 1.0]);
        assert_eq!(d.label(1), 1);
        assert_eq!(d.labels(), &[0, 1, 0]);
    }

    #[test]
    fn iter_matches_rows() {
        let d = sample();
        let collected: Vec<_> = d.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], (&[0.5, 1.0][..], 0));
    }

    #[test]
    fn try_push_rejects_invalid() {
        let mut d = Dataset::new(schema());
        assert!(d.try_push(&[0.1], 0).is_err());
        assert!(d.try_push(&[0.1, 5.0], 0).is_err());
        assert!(d.try_push(&[0.1, 1.0], 9).is_err());
        assert!(d.is_empty());
    }

    #[test]
    fn select_reorders() {
        let d = sample();
        let s = d.select(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[0.5, 1.0]);
        assert_eq!(s.label(1), 0);
    }

    #[test]
    fn head_truncates() {
        let d = sample();
        assert_eq!(d.head(2).len(), 2);
        assert_eq!(d.head(99).len(), 3);
        assert_eq!(d.head(0).len(), 0);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = sample();
        let b = sample();
        a.extend_from(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.row(3), &[0.1, 0.0]);
    }

    #[test]
    fn class_counts_counts() {
        let d = sample();
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn with_capacity_preallocates() {
        let d = Dataset::with_capacity(schema(), 16);
        assert!(d.is_empty());
    }
}
