//! Classification quality metrics.

use crate::schema::ClassId;

/// Fraction of positions where `predicted[i] != actual[i]`.
///
/// Returns 0.0 for empty inputs (an empty test set provides no evidence of
/// error — callers that need to treat it specially should check emptiness).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn error_rate(predicted: &[ClassId], actual: &[ClassId]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let wrong = predicted.iter().zip(actual).filter(|(p, a)| p != a).count();
    wrong as f64 / predicted.len() as f64
}

/// `1.0 - error_rate`.
pub fn accuracy(predicted: &[ClassId], actual: &[ClassId]) -> f64 {
    1.0 - error_rate(predicted, actual)
}

/// A confusion matrix over `n_classes` classes.
///
/// `counts[actual][predicted]` is the number of records of class `actual`
/// predicted as `predicted`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// An all-zero matrix.
    pub fn new(n_classes: usize) -> Self {
        ConfusionMatrix {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Record one prediction.
    pub fn record(&mut self, actual: ClassId, predicted: ClassId) {
        self.counts[actual as usize * self.n_classes + predicted as usize] += 1;
    }

    /// Count for an (actual, predicted) pair.
    pub fn get(&self, actual: ClassId, predicted: ClassId) -> usize {
        self.counts[actual as usize * self.n_classes + predicted as usize]
    }

    /// Total records recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of correct predictions (trace).
    pub fn correct(&self) -> usize {
        (0..self.n_classes)
            .map(|i| self.counts[i * self.n_classes + i])
            .sum()
    }

    /// Overall error rate; 0.0 when nothing has been recorded.
    pub fn error_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            1.0 - self.correct() as f64 / t as f64
        }
    }
}

/// Mean squared error of probabilistic predictions, as used by the WCE
/// baseline (Wang et al., KDD'03): for each record the squared error is
/// `(1 - p(true class))²`.
///
/// `probs[i]` is the predicted probability assigned to `actual[i]`.
pub fn mse_from_true_class_probs(probs: &[f64], _actual: &[ClassId]) -> f64 {
    if probs.is_empty() {
        return 0.0;
    }
    probs.iter().map(|p| (1.0 - p) * (1.0 - p)).sum::<f64>() / probs.len() as f64
}

/// The MSE of a classifier that predicts randomly according to the class
/// prior `p`: `MSE_r = Σ_c p(c) (1 - p(c))²` (Wang et al., KDD'03). This is
/// the reference weight in the WCE ensemble.
pub fn mse_random(class_prior: &[f64]) -> f64 {
    class_prior.iter().map(|&p| p * (1.0 - p) * (1.0 - p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_counts_mismatches() {
        assert_eq!(error_rate(&[0, 1, 1, 0], &[0, 1, 0, 1]), 0.5);
        assert_eq!(error_rate(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn error_rate_rejects_mismatched_lengths() {
        error_rate(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_tracks_counts() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 1);
        m.record(2, 2);
        m.record(2, 2);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(2, 2), 2);
        assert_eq!(m.total(), 4);
        assert_eq!(m.correct(), 3);
        assert!((m.error_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_matrix_has_zero_error() {
        assert_eq!(ConfusionMatrix::new(2).error_rate(), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        // probabilities assigned to the true class
        let p = [1.0, 0.5, 0.0];
        let mse = mse_from_true_class_probs(&p, &[0, 0, 0]);
        assert!((mse - (0.0 + 0.25 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mse_random_uniform_two_classes() {
        // p = (0.5, 0.5): Σ 0.5 * 0.25 = 0.25
        assert!((mse_random(&[0.5, 0.5]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mse_random_degenerate_prior_is_zero() {
        assert_eq!(mse_random(&[1.0, 0.0]), 0.0);
    }
}
