//! Shared data layer for the high-order-models workspace.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`Schema`] — attribute and class definitions for a stream. Attributes
//!   are either numeric or categorical; categorical values are stored as
//!   small integer codes inside the same `f64` cell as numeric values, which
//!   keeps a [`Dataset`] a single flat, cache-friendly buffer.
//! * [`Dataset`] — an owned, row-major table of labeled records.
//! * [`Instances`] — the read-only access trait that learners and the
//!   clustering algorithm consume. Both [`Dataset`] and the zero-copy
//!   [`IndexView`] implement it, so clustering can carve a historical
//!   dataset into thousands of overlapping-free clusters without copying a
//!   single row.
//! * [`StreamSource`] / [`StreamRecord`] — pull-based labeled stream
//!   abstraction used by the generators and the online experiments. Every
//!   record carries the generator's ground-truth concept id so the
//!   evaluation harness can align error curves on concept changes
//!   (paper Figs. 5–6).
//! * [`metrics`] — error rates, confusion matrices and the mean squared
//!   error used by the WCE baseline.
//! * [`rng`] — deterministic seeding helpers so every experiment is
//!   reproducible from a single `u64` seed.

pub mod dataset;
pub mod io;
pub mod metrics;
pub mod rng;
pub mod schema;
pub mod stream;
pub mod view;

pub use dataset::Dataset;
pub use io::{read_csv, write_csv, CsvOptions};
pub use schema::{AttrKind, Attribute, ClassId, Schema};
pub use stream::{StreamRecord, StreamSource};
pub use view::{FullView, IndexView, Instances};
