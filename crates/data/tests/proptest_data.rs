//! Property-based tests of the data layer's invariants.

use hom_data::metrics::{error_rate, mse_random, ConfusionMatrix};
use hom_data::rng::{derive_seed, holdout_split, sample_discrete, seeded, zipf_weights};
use hom_data::{Attribute, Dataset, IndexView, Instances, Schema};
use proptest::prelude::*;

proptest! {
    /// Holdout split is a partition: disjoint halves covering 0..n, with
    /// the test half exactly ⌊n/2⌋.
    #[test]
    fn holdout_split_partitions(n in 2usize..500, seed in any::<u64>()) {
        let mut rng = seeded(seed);
        let (train, test) = holdout_split(n, &mut rng);
        prop_assert_eq!(test.len(), n / 2);
        prop_assert_eq!(train.len(), n - n / 2);
        let mut all: Vec<u32> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    /// Zipf weights are a probability distribution and non-increasing in
    /// rank for non-negative exponents.
    #[test]
    fn zipf_weights_are_distribution(n in 1usize..100, z in 0.0f64..4.0) {
        let w = zipf_weights(n, z);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(w.windows(2).all(|p| p[0] >= p[1] - 1e-12));
        prop_assert!(w.iter().all(|&x| x > 0.0));
    }

    /// Discrete sampling never picks a zero-weight index.
    #[test]
    fn sample_discrete_respects_zeros(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = seeded(seed);
        for _ in 0..20 {
            let i = sample_discrete(&weights, &mut rng);
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }

    /// Derived seeds are deterministic and (practically) distinct across
    /// indices.
    #[test]
    fn derive_seed_deterministic(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assert_eq!(derive_seed(seed, a), derive_seed(seed, a));
        if a != b {
            prop_assert_ne!(derive_seed(seed, a), derive_seed(seed, b));
        }
    }

    /// error_rate is within [0,1] and complements accuracy.
    #[test]
    fn error_rate_bounds(labels in proptest::collection::vec((0u32..4, 0u32..4), 0..200)) {
        let (pred, actual): (Vec<u32>, Vec<u32>) = labels.into_iter().unzip();
        let e = error_rate(&pred, &actual);
        prop_assert!((0.0..=1.0).contains(&e));
        let a = hom_data::metrics::accuracy(&pred, &actual);
        prop_assert!((e + a - 1.0).abs() < 1e-12);
    }

    /// The confusion matrix agrees with the direct error count.
    #[test]
    fn confusion_matrix_matches_error_rate(
        labels in proptest::collection::vec((0u32..3, 0u32..3), 1..200),
    ) {
        let mut m = ConfusionMatrix::new(3);
        for &(a, p) in &labels {
            m.record(a, p);
        }
        let (pred, actual): (Vec<u32>, Vec<u32>) =
            labels.iter().map(|&(a, p)| (p, a)).unzip();
        prop_assert!((m.error_rate() - error_rate(&pred, &actual)).abs() < 1e-12);
        prop_assert_eq!(m.total(), labels.len());
    }

    /// MSE of a random guesser is within [0, 1) and zero only for
    /// degenerate priors.
    #[test]
    fn mse_random_bounds(counts in proptest::collection::vec(0u32..100, 2..6)) {
        let total: u32 = counts.iter().sum();
        prop_assume!(total > 0);
        let prior: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
        let mse = mse_random(&prior);
        prop_assert!((0.0..1.0).contains(&mse));
    }

    /// Index views agree with direct dataset access under arbitrary index
    /// lists (including duplicates).
    #[test]
    fn index_view_consistency(
        rows in proptest::collection::vec((0.0f64..1.0, 0u32..3), 1..50),
        picks in proptest::collection::vec(0usize..49, 0..100),
    ) {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b", "c"]);
        let mut d = Dataset::new(schema);
        for &(x, y) in &rows {
            d.push(&[x], y);
        }
        let idx: Vec<u32> = picks
            .into_iter()
            .filter(|&p| p < rows.len())
            .map(|p| p as u32)
            .collect();
        let view = IndexView::new(&d, &idx);
        prop_assert_eq!(view.len(), idx.len());
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(view.row(k), d.row(i as usize));
            prop_assert_eq!(view.label(k), d.label(i as usize));
        }
        // class counts of the view sum to its length
        prop_assert_eq!(view.class_counts().iter().sum::<usize>(), idx.len());
    }

    /// select() round-trips rows in the requested order.
    #[test]
    fn dataset_select_roundtrip(
        rows in proptest::collection::vec((0.0f64..1.0, 0u32..2), 1..40),
    ) {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for &(x, y) in &rows {
            d.push(&[x], y);
        }
        let rev: Vec<u32> = (0..rows.len() as u32).rev().collect();
        let s = d.select(&rev);
        for k in 0..rows.len() {
            prop_assert_eq!(s.row(k), d.row(rows.len() - 1 - k));
        }
    }
}
