//! Cross-process trace stitching, end to end over the real wire: a
//! 3-worker cluster (in-process [`WorkerServer`]s, loopback HTTP) is
//! driven through the [`Router`], and the federated [`Router::trace`]
//! view must assemble one node-labelled span tree per trace id —
//! batch fan-out spans from the router *and every worker* under the
//! deterministically-derived batch trace id, and all three migration
//! phases (snapshot → in → evict, across two different workers) under
//! the migration's stream-derived trace id.
//!
//! Trace ids are pure functions of protocol state
//! ([`TraceContext::for_batch`] of the router's batch sequence number,
//! [`TraceContext::for_migration`] of the stream id), so the test
//! *predicts* every id it then fetches — no scraping ids out of logs.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use hom_classifiers::DecisionTreeLearner;
use hom_cluster::ClusterParams;
use hom_cluster_serve::{Router, WorkerServer, DEFAULT_VNODES};
use hom_core::{build, BuildParams, HighOrderModel};
use hom_data::stream::collect;
use hom_data::{StreamRecord, StreamSource};
use hom_datagen::{StaggerParams, StaggerSource};
use hom_obs::{jsonl, OwnedEvent, TraceContext};
use hom_serve::{Request, ServeEngine, ServeOptions, ServeTelemetry};

fn fixture() -> (Arc<HighOrderModel>, Vec<StreamRecord>) {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 3000);
    let (model, _) = build(
        &data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size: 10,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let test: Vec<StreamRecord> = (0..200).map(|_| src.next_record()).collect();
    (Arc::new(model), test)
}

fn spawn_worker(model: &Arc<HighOrderModel>) -> WorkerServer {
    let telemetry = Arc::new(ServeTelemetry::new());
    let engine = Arc::new(ServeEngine::with_options(
        Arc::clone(model),
        &ServeOptions {
            shards: Some(4),
            threads: Some(2),
            sink: telemetry.obs(),
            ..Default::default()
        },
    ));
    let addr: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    WorkerServer::bind(addr, engine, telemetry).expect("worker binds")
}

/// The `"node":"…"` label [`Router::trace`] injects into each stitched
/// line (not part of the event schema, so recovered from the raw text).
fn node_of(line: &str) -> String {
    const KEY: &str = "\"node\":\"";
    let at = line.find(KEY).expect("stitched line carries a node label");
    let rest = &line[at + KEY.len()..];
    rest[..rest.find('"').expect("label closes")].to_string()
}

/// Parse a stitched JSONL document into `(node, event)` pairs.
fn stitched_events(doc: &str) -> Vec<(String, OwnedEvent)> {
    doc.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            (
                node_of(l),
                jsonl::parse_line(l).expect("stitched line parses"),
            )
        })
        .collect()
}

/// Closed spans named `name` on `node`, as `(id, parent, trace)`.
fn span_ends(events: &[(String, OwnedEvent)], node: &str, name: &str) -> Vec<(u64, u64, u64)> {
    events
        .iter()
        .filter_map(|(n, e)| match e {
            OwnedEvent::SpanEnd {
                id,
                parent,
                trace,
                name: en,
                ..
            } if n == node && en == name => Some((*id, *parent, *trace)),
            _ => None,
        })
        .collect()
}

fn batch(streams: &[u64], r: &StreamRecord) -> Vec<Request> {
    streams
        .iter()
        .map(|&stream| Request::Step {
            stream,
            x: r.x.to_vec(),
            y: r.y,
        })
        .collect()
}

#[test]
fn batch_trace_stitches_router_and_all_workers_under_one_id() {
    let (model, test) = fixture();
    let workers: Vec<WorkerServer> = (0..3).map(|_| spawn_worker(&model)).collect();
    let router = Router::new(
        workers.iter().map(|w| w.addr()).collect(),
        DEFAULT_VNODES,
        Duration::from_secs(10),
    )
    .expect("router");

    // Scattered ids so every worker owns a share — the fan-out must
    // really touch all three nodes for the stitched tree to show them.
    let streams: Vec<u64> = (0..24u64).map(|i| i * 7919 + 3).collect();
    for w in 0..3 {
        assert!(
            streams.iter().any(|&s| router.owner(s) == w),
            "fixture must place streams on every worker"
        );
    }

    let n_batches = 5u64;
    for r in &test[..n_batches as usize] {
        router.submit(&batch(&streams, r)).expect("submit");
    }

    // The batch trace id is a pure function of the router's sequence
    // number — predict it, then confirm the router recorded the same.
    let want_id = TraceContext::for_batch(n_batches - 1).trace_id;
    assert_eq!(router.last_trace_id(), want_id, "batch ids derive purely");

    let events = stitched_events(&router.trace(want_id).expect("federated fetch"));
    assert!(!events.is_empty(), "trace must not come back empty");
    for (node, e) in &events {
        let (OwnedEvent::SpanStart { trace, .. } | OwnedEvent::SpanEnd { trace, .. }) = e else {
            panic!("stitched slice holds span events only, got {e:?} on {node}");
        };
        assert_eq!(
            *trace, want_id,
            "foreign trace id leaked into the slice: {node} {e:?}"
        );
    }

    // Router side of the tree: one route root, one forward per worker,
    // one merge — and every forward is a child of the route root.
    let routes = span_ends(&events, "router", "cluster.route");
    assert_eq!(routes.len(), 1, "exactly one route root span");
    let forwards = span_ends(&events, "router", "cluster.forward");
    assert_eq!(forwards.len(), 3, "one forward span per worker");
    for &(_, parent, _) in &forwards {
        assert_eq!(parent, routes[0].0, "forwards nest under the route root");
    }
    assert_eq!(span_ends(&events, "router", "cluster.merge").len(), 1);

    // Worker side: every worker's submit span is stitched under one of
    // the router's forward spans via the X-HOM-Trace parent id, and the
    // handler pipeline (decode → engine serve.batch → encode) hangs
    // beneath it on the same node.
    for w in 0..3 {
        let node = format!("w{w}");
        let submits = span_ends(&events, &node, "cluster.submit");
        assert_eq!(submits.len(), 1, "{node}: one submit span");
        let (submit_id, submit_parent, _) = submits[0];
        assert!(
            forwards.iter().any(|&(fid, _, _)| fid == submit_parent),
            "{node}: submit must be the child of a router forward span"
        );
        for stage in ["cluster.decode", "cluster.encode", "serve.batch"] {
            let spans = span_ends(&events, &node, stage);
            assert_eq!(spans.len(), 1, "{node}: one {stage} span");
            assert_eq!(spans[0].1, submit_id, "{node}: {stage} under submit");
        }
    }
}

#[test]
fn migration_trace_shows_all_three_phases_across_two_nodes() {
    let (model, test) = fixture();
    let mut workers: Vec<WorkerServer> = (0..2).map(|_| spawn_worker(&model)).collect();
    let router = Router::new(
        workers.iter().map(|w| w.addr()).collect(),
        DEFAULT_VNODES,
        Duration::from_secs(10),
    )
    .expect("router");

    let streams: Vec<u64> = (0..24u64).map(|i| i * 7919 + 3).collect();
    let before: Vec<usize> = streams.iter().map(|&s| router.owner(s)).collect();
    for r in &test[..5] {
        router.submit(&batch(&streams, r)).expect("submit");
    }

    // Grow the ring: the join migrates every live stream the new worker
    // now owns, one two-phase move (and one trace) per stream.
    let joined = spawn_worker(&model);
    let report = router.add_worker(joined.addr()).expect("rebalance");
    workers.push(joined);
    assert!(report.migrated > 0, "a third of the arc must move");

    let moved: Vec<(u64, usize)> = streams
        .iter()
        .zip(&before)
        .filter(|&(&s, &b)| router.owner(s) != b)
        .map(|(&s, &b)| (s, b))
        .collect();
    assert_eq!(moved.len(), report.migrated, "moved set matches");

    for &(stream, source) in &moved {
        // The migration's trace id derives from the stream id alone.
        let id = TraceContext::for_migration(stream).trace_id;
        let events = stitched_events(&router.trace(id).expect("federated fetch"));
        let src = format!("w{source}");

        let roots = span_ends(&events, "router", "cluster.migrate");
        assert_eq!(roots.len(), 1, "stream {stream}: one migration root");
        let phases = [
            (src.as_str(), "cluster.migrate_snapshot"),
            ("w2", "cluster.migrate_in"),
            (src.as_str(), "cluster.migrate_evict"),
        ];
        for (node, name) in phases {
            let spans = span_ends(&events, node, name);
            assert_eq!(spans.len(), 1, "stream {stream}: one {name} on {node}");
            let (_, parent, trace) = spans[0];
            assert_eq!(trace, id, "stream {stream}: {name} under the one id");
            assert_eq!(
                parent, roots[0].0,
                "stream {stream}: {name} stitches under the router root"
            );
        }
    }

    // The router remembers the newest migration trace for operators
    // ("what just moved?"), and it is one of the derived ids.
    assert!(
        moved
            .iter()
            .any(|&(s, _)| TraceContext::for_migration(s).trace_id == router.last_trace_id()),
        "last_trace_id must point at one of the migrations"
    );
}
