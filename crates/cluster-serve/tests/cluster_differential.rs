//! The cluster's differential bar: a 3-worker router/worker cluster is
//! **bit-identical** — predictions and posteriors — to a single
//! `ServeEngine` fed the same workload, including across a mid-traffic
//! worker join (consistent-hash migration) and a mid-traffic
//! cluster-wide two-phase model swap. Worker shard/thread counts are
//! deliberately heterogeneous: distribution is pure execution policy.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use hom_classifiers::{Classifier, DecisionTreeLearner, MajorityClassifier};
use hom_cluster::ClusterParams;
use hom_cluster_serve::{Router, WorkerServer, DEFAULT_VNODES};
use hom_core::{build, encode_model, BuildParams, HighOrderModel};
use hom_data::stream::collect;
use hom_data::{StreamRecord, StreamSource};
use hom_datagen::{StaggerParams, StaggerSource};
use hom_serve::{Request, ServeEngine, ServeOptions, ServeTelemetry};

fn bits(p: &[f64]) -> Vec<u64> {
    p.iter().map(|v| v.to_bits()).collect()
}

fn fixture() -> (Arc<HighOrderModel>, Vec<StreamRecord>) {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 3000);
    let (model, _) = build(
        &data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size: 10,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let test: Vec<StreamRecord> = (0..600).map(|_| src.next_record()).collect();
    (Arc::new(model), test)
}

fn novel_classifier(model: &HighOrderModel) -> Arc<dyn Classifier> {
    let n = model.schema().n_classes();
    let counts: Vec<usize> = (0..n).map(|c| usize::from(c == 1)).collect();
    Arc::new(MajorityClassifier::from_counts(&counts))
}

fn spawn_worker(model: &Arc<HighOrderModel>, shards: usize, threads: usize) -> WorkerServer {
    let telemetry = Arc::new(ServeTelemetry::new());
    let engine = Arc::new(ServeEngine::with_options(
        Arc::clone(model),
        &ServeOptions {
            shards: Some(shards),
            threads: Some(threads),
            sink: telemetry.obs(),
            ..Default::default()
        },
    ));
    let addr: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    WorkerServer::bind(addr, engine, telemetry).expect("worker binds")
}

#[test]
fn cluster_is_bit_identical_to_one_engine_across_join_and_swap() {
    let (model, test) = fixture();
    // Scattered ids so every worker owns a healthy share.
    let streams: Vec<u64> = (0..40u64).map(|i| i * 7919 + 3).collect();
    let reference = ServeEngine::new(Arc::clone(&model));

    // Heterogeneous workers: different shard tables, different pools.
    let mut workers = vec![spawn_worker(&model, 4, 1), spawn_worker(&model, 16, 2)];
    let router = Router::new(
        workers.iter().map(|w| w.addr()).collect(),
        DEFAULT_VNODES,
        Duration::from_secs(10),
    )
    .expect("non-empty worker set");

    // Drive `records` through cluster and reference in lock-step
    // batches (10 records × all streams per batch), comparing every
    // response vector.
    let drive = |records: &[StreamRecord]| {
        for chunk in records.chunks(10) {
            let batch: Vec<Request> = chunk
                .iter()
                .flat_map(|r| {
                    streams.iter().map(move |&stream| Request::Step {
                        stream,
                        x: r.x.to_vec(),
                        y: r.y,
                    })
                })
                .collect();
            let got = router.submit(&batch).expect("cluster submit");
            let want = reference.submit(&batch);
            assert_eq!(got, want, "cluster responses diverged from one engine");
        }
    };

    drive(&test[..150]);

    // Mid-traffic join: the grown ring migrates exactly the streams the
    // new worker now owns (two-phase `/migrate/snapshot` →
    // `/migrate/in` → `/migrate/evict` over the wire).
    let joined = spawn_worker(&model, 8, 2);
    let report = router.add_worker(joined.addr()).expect("rebalance");
    workers.push(joined);
    assert!(
        report.migrated > 0,
        "40 streams over a 1/3 arc: some must move to the new worker"
    );
    assert_eq!(report.workers, 3);

    drive(&test[150..300]);

    // Mid-traffic cluster-wide swap: two-phase flip of an admitted
    // model, against the single engine's in-process swap.
    let extended = Arc::new(model.admit_concept(novel_classifier(&model), 0.2, 120));
    let blob = encode_model(&extended, 1).expect("admitted model encodes");
    assert_eq!(router.swap(&blob).expect("fleet flip"), 1);
    reference
        .swap_model(Arc::clone(&extended))
        .expect("reference swap");
    for (w, worker) in workers.iter().enumerate() {
        assert_eq!(worker.engine().epoch(), 1, "worker {w} missed the flip");
    }

    drive(&test[300..]);

    // Final state: every stream's posterior is bit-identical to the
    // single engine's, and lives exactly where the ring says.
    for &stream in &streams {
        let want = reference.posterior(stream).expect("reference has it");
        let owner = router.owner(stream);
        let got = workers[owner]
            .engine()
            .posterior(stream)
            .unwrap_or_else(|| panic!("stream {stream} not on ring owner {owner}"));
        assert_eq!(
            bits(&got),
            bits(&want),
            "stream {stream} posterior diverged"
        );
        for (w, worker) in workers.iter().enumerate() {
            if w != owner {
                assert!(
                    !worker.engine().stream_ids().contains(&stream),
                    "stream {stream} duplicated on worker {w}"
                );
            }
        }
    }

    // Fleet observability: the federated scrape carries every worker's
    // samples under its own label and parses as one exposition.
    let federated = router.metrics().expect("federated metrics");
    for w in 0..workers.len() {
        assert!(
            federated.contains(&format!("worker=\"{w}\"")),
            "worker {w} missing from federation"
        );
    }
    let families = hom_obs::parse_prometheus(&federated).expect("federation parses");
    assert!(
        families
            .iter()
            .any(|f| f.name == "hom_serve_records_observed_total"),
        "request counters must federate"
    );
    let status = router.cluster_status();
    assert_eq!(status.len(), 3);
    for s in &status {
        assert!(s.healthy, "worker {} unhealthy", s.worker);
        assert_eq!(s.epoch, 1);
    }
}

#[test]
fn cluster_results_are_thread_count_invariant() {
    // The same workload on single-threaded and multi-threaded workers
    // produces identical bytes — the cluster analogue of the engine's
    // HOM_THREADS invariance (CI runs the smoke at 1 and 8 threads).
    let (model, test) = fixture();
    let streams: Vec<u64> = (0..16u64).map(|i| i * 31 + 1).collect();
    let run = |threads: usize| -> Vec<Vec<u64>> {
        let workers: Vec<WorkerServer> = (0..3)
            .map(|i| spawn_worker(&model, 4 << i, threads))
            .collect();
        let router = Router::new(
            workers.iter().map(|w| w.addr()).collect(),
            DEFAULT_VNODES,
            Duration::from_secs(10),
        )
        .expect("router");
        for chunk in test[..200].chunks(20) {
            let batch: Vec<Request> = chunk
                .iter()
                .flat_map(|r| {
                    streams.iter().map(move |&stream| Request::Step {
                        stream,
                        x: r.x.to_vec(),
                        y: r.y,
                    })
                })
                .collect();
            router.submit(&batch).expect("submit");
        }
        streams
            .iter()
            .map(|&s| {
                let owner = router.owner(s);
                bits(&workers[owner].engine().posterior(s).expect("posterior"))
            })
            .collect()
    };
    assert_eq!(run(1), run(4), "thread count changed cluster output bits");
}
