//! Router failure and corner semantics: a dead worker is a typed error
//! (never a hang, never a partial response vector), unknown stream ids
//! route deterministically, parked and store-tiered streams migrate
//! over the wire, and an older-epoch snapshot arriving *after* a
//! cluster-wide swap migrates forward on restore.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hom_classifiers::{Classifier, DecisionTreeLearner, MajorityClassifier};
use hom_cluster::ClusterParams;
use hom_cluster_serve::{http_request, wire, ClusterError, Router, WorkerServer, DEFAULT_VNODES};
use hom_core::{build, encode_model, BuildParams, HighOrderModel};
use hom_data::stream::collect;
use hom_data::{StreamRecord, StreamSource};
use hom_datagen::{StaggerParams, StaggerSource};
use hom_obs::Obs;
use hom_serve::{Request, ServeEngine, ServeOptions, ServeTelemetry, StreamStore};
use hom_store::{FsIo, StoreOptions};

fn bits(p: &[f64]) -> Vec<u64> {
    p.iter().map(|v| v.to_bits()).collect()
}

fn fixture() -> (Arc<HighOrderModel>, Vec<StreamRecord>) {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 3000);
    let (model, _) = build(
        &data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size: 10,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let test: Vec<StreamRecord> = (0..500).map(|_| src.next_record()).collect();
    (Arc::new(model), test)
}

fn novel_classifier(model: &HighOrderModel) -> Arc<dyn Classifier> {
    let n = model.schema().n_classes();
    let counts: Vec<usize> = (0..n).map(|c| usize::from(c == 1)).collect();
    Arc::new(MajorityClassifier::from_counts(&counts))
}

fn spawn_worker(model: &Arc<HighOrderModel>, store: Option<Arc<StreamStore>>) -> WorkerServer {
    let telemetry = Arc::new(ServeTelemetry::new());
    let engine = Arc::new(ServeEngine::with_options(
        Arc::clone(model),
        &ServeOptions {
            threads: Some(1),
            sink: telemetry.obs(),
            store,
            ..Default::default()
        },
    ));
    let addr: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    WorkerServer::bind(addr, engine, telemetry).expect("worker binds")
}

fn disk_store(tag: &str) -> (Arc<StreamStore>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("hom-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let io = FsIo::open(&dir).expect("temp dir");
    let store = StreamStore::open_with(
        Arc::new(io),
        StoreOptions {
            commit_interval_us: 0,
            sink: Obs::none(),
            ..Default::default()
        },
    )
    .expect("open store");
    (Arc::new(store), dir)
}

/// The first stream id (from 1) the ring sends to worker `owner`.
fn stream_owned_by(router: &Router, owner: usize) -> u64 {
    (1..)
        .find(|&s| router.owner(s) == owner)
        .expect("ring is total")
}

#[test]
fn dead_worker_mid_batch_is_a_typed_error_never_partial() {
    let (model, test) = fixture();
    let alive = spawn_worker(&model, None);
    let doomed = spawn_worker(&model, None);
    let doomed_addr = doomed.addr();
    let router = Router::new(
        vec![alive.addr(), doomed_addr],
        DEFAULT_VNODES,
        Duration::from_millis(800),
    )
    .expect("router");
    let s0 = stream_owned_by(&router, 0);
    let s1 = stream_owned_by(&router, 1);

    // Kill worker 1 (dropping the server stops its listener), then
    // submit a batch spanning both workers.
    drop(doomed);
    let batch: Vec<Request> = test[..5]
        .iter()
        .flat_map(|r| {
            [s0, s1].into_iter().map(move |stream| Request::Step {
                stream,
                x: r.x.to_vec(),
                y: r.y,
            })
        })
        .collect();
    let t0 = Instant::now();
    let err = router
        .submit(&batch)
        .expect_err("half the batch is unroutable");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "failure must be prompt, not a hang"
    );
    match err {
        ClusterError::WorkerDown { worker, addr, .. } => {
            assert_eq!(worker, 1);
            assert_eq!(addr, doomed_addr);
        }
        other => panic!("expected WorkerDown, got {other}"),
    }

    // A batch entirely on the surviving worker still serves.
    let ok_batch: Vec<Request> = test[..5]
        .iter()
        .map(|r| Request::Step {
            stream: s0,
            x: r.x.to_vec(),
            y: r.y,
        })
        .collect();
    let responses = router.submit(&ok_batch).expect("survivor still serves");
    assert_eq!(responses.len(), 5);
}

#[test]
fn unknown_stream_ids_route_deterministically() {
    let (model, test) = fixture();
    let workers: Vec<WorkerServer> = (0..3).map(|_| spawn_worker(&model, None)).collect();
    let router = Router::new(
        workers.iter().map(|w| w.addr()).collect(),
        DEFAULT_VNODES,
        Duration::from_secs(5),
    )
    .expect("router");

    // A never-seen id is created on its ring owner by the first request
    // and every subsequent request lands on the same worker.
    for fresh in [12345u64, 999_999_999_999, u64::MAX - 17] {
        let owner = router.owner(fresh);
        for r in &test[..3] {
            let responses = router
                .submit(&[Request::Step {
                    stream: fresh,
                    x: r.x.to_vec(),
                    y: r.y,
                }])
                .expect("submit");
            assert!(responses[0].prediction.is_some());
        }
        for (w, worker) in workers.iter().enumerate() {
            assert_eq!(
                worker.engine().stream_ids().contains(&fresh),
                w == owner,
                "stream {fresh}: worker {w} vs owner {owner}"
            );
        }
    }
}

#[test]
fn parked_and_store_tiered_streams_migrate_over_the_wire() {
    let (model, test) = fixture();
    let (store, dir) = disk_store("migrate");
    let source = spawn_worker(&model, Some(Arc::clone(&store)));
    let target = spawn_worker(&model, None);
    let router = Router::new(
        vec![source.addr(), target.addr()],
        DEFAULT_VNODES,
        Duration::from_secs(5),
    )
    .expect("router");
    let stream = stream_owned_by(&router, 0);

    let reference = ServeEngine::new(Arc::clone(&model));
    for r in &test[..250] {
        router
            .submit(&[Request::Step {
                stream,
                x: r.x.to_vec(),
                y: r.y,
            }])
            .expect("submit");
        reference.step(stream, &r.x, r.y);
    }
    // Park on the source: with a store configured the snapshot tiers to
    // disk, which is exactly what migration must be able to lift.
    assert!(source.engine().park(stream));
    assert_eq!(source.engine().live_streams(), 0);
    assert!(store.contains(stream) || store.parked_len() > 0);

    router.migrate_stream(stream, 1).expect("wire migration");
    assert!(
        !source.engine().stream_ids().contains(&stream),
        "extract must remove the stream from the source"
    );
    store.commit().expect("commit");
    assert!(
        !store.contains(stream),
        "store copy must be tombstoned, or a source restart resurrects it"
    );

    // The stream continues on the target, bit-identically. (Traffic is
    // driven at the target directly: the operator escape hatch moved
    // the stream off its ring owner.)
    for r in &test[250..] {
        let body = wire::encode_requests(&[Request::Step {
            stream,
            x: r.x.to_vec(),
            y: r.y,
        }])
        .expect("encodes");
        let (status, payload) = http_request(
            target.addr(),
            "POST",
            "/submit",
            body.as_bytes(),
            Duration::from_secs(5),
        )
        .expect("target serves");
        assert_eq!(status, 200);
        let responses =
            wire::decode_responses(std::str::from_utf8(&payload).expect("utf-8")).expect("decodes");
        let want = reference.step(stream, &r.x, r.y);
        assert_eq!(responses[0].prediction, Some(want));
    }
    assert_eq!(
        bits(&target.engine().posterior(stream).expect("migrated")),
        bits(&reference.posterior(stream).expect("reference")),
        "post-migration posterior diverged"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn failed_migration_never_loses_stream_state() {
    let (model, test) = fixture();
    let source = spawn_worker(&model, None);
    // A topology entry nobody listens on: the migration target is dead.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        l.local_addr().expect("addr")
    };
    let router = Router::new(
        vec![source.addr(), dead_addr],
        DEFAULT_VNODES,
        Duration::from_millis(500),
    )
    .expect("router");
    let stream = stream_owned_by(&router, 0);

    let reference = ServeEngine::new(Arc::clone(&model));
    for r in &test[..100] {
        router
            .submit(&[Request::Step {
                stream,
                x: r.x.to_vec(),
                y: r.y,
            }])
            .expect("submit");
        reference.step(stream, &r.x, r.y);
    }

    let err = router
        .migrate_stream(stream, 1)
        .expect_err("target is dead");
    assert!(
        matches!(err, ClusterError::WorkerDown { worker: 1, .. }),
        "expected WorkerDown for the target, got {err}"
    );
    // Two-phase migration: the source copy is evicted only after the
    // target acks /migrate/in, so the failed move lost nothing and the
    // stream keeps serving bit-identically where it was.
    assert!(
        source.engine().stream_ids().contains(&stream),
        "source must still hold the stream after a failed migration"
    );
    assert_eq!(
        bits(&source.engine().posterior(stream).expect("still resident")),
        bits(&reference.posterior(stream).expect("reference")),
        "posterior diverged after failed migration"
    );
    for r in &test[100..150] {
        let want = reference.step(stream, &r.x, r.y);
        let responses = router
            .submit(&[Request::Step {
                stream,
                x: r.x.to_vec(),
                y: r.y,
            }])
            .expect("source still serves");
        assert_eq!(responses[0].prediction, Some(want));
    }
}

#[test]
fn older_epoch_snapshot_arriving_after_swap_migrates_forward() {
    let (model, test) = fixture();
    let workers: Vec<WorkerServer> = (0..2).map(|_| spawn_worker(&model, None)).collect();
    let router = Router::new(
        workers.iter().map(|w| w.addr()).collect(),
        DEFAULT_VNODES,
        Duration::from_secs(5),
    )
    .expect("router");
    let stream = stream_owned_by(&router, 0);

    let reference = ServeEngine::new(Arc::clone(&model));
    for r in &test[..200] {
        router
            .submit(&[Request::Step {
                stream,
                x: r.x.to_vec(),
                y: r.y,
            }])
            .expect("submit");
        reference.step(stream, &r.x, r.y);
    }
    // Park the stream at epoch 0, then flip the whole fleet to epoch 1.
    assert!(workers[0].engine().park(stream));
    let extended = Arc::new(model.admit_concept(novel_classifier(&model), 0.2, 120));
    let blob = encode_model(&extended, 1).expect("encodes");
    assert_eq!(router.swap(&blob).expect("fleet flip"), 1);
    reference
        .swap_model(Arc::clone(&extended))
        .expect("reference swap");

    // The parked snapshot still carries the epoch-0 stamp. Migrating it
    // now ships pre-swap bytes into a post-swap engine: /migrate/in
    // must migrate the state forward, not reject or corrupt it.
    router
        .migrate_stream(stream, 1)
        .expect("stale snapshot migrates");
    let migrated = workers[1]
        .engine()
        .posterior(stream)
        .expect("restored on the target");
    assert_eq!(
        migrated.len(),
        extended.n_concepts(),
        "posterior must span the grown concept space"
    );
    assert_eq!(
        bits(&migrated),
        bits(&reference.posterior(stream).expect("reference")),
        "forward-migrated posterior diverged"
    );

    // And it keeps serving on the new model, still bit-identical.
    for r in &test[200..300] {
        let want = reference.step(stream, &r.x, r.y);
        let body = wire::encode_requests(&[Request::Step {
            stream,
            x: r.x.to_vec(),
            y: r.y,
        }])
        .expect("encodes");
        let (status, payload) = http_request(
            workers[1].addr(),
            "POST",
            "/submit",
            body.as_bytes(),
            Duration::from_secs(5),
        )
        .expect("target serves");
        assert_eq!(status, 200);
        let responses =
            wire::decode_responses(std::str::from_utf8(&payload).expect("utf-8")).expect("decodes");
        assert_eq!(responses[0].prediction, Some(want));
    }
}

#[test]
fn swap_aborts_at_prepare_when_a_worker_would_disagree() {
    let (model, test) = fixture();
    let workers: Vec<WorkerServer> = (0..2).map(|_| spawn_worker(&model, None)).collect();
    let router = Router::new(
        workers.iter().map(|w| w.addr()).collect(),
        DEFAULT_VNODES,
        Duration::from_secs(5),
    )
    .expect("router");
    for r in &test[..20] {
        router
            .submit(&[Request::Step {
                stream: 1,
                x: r.x.to_vec(),
                y: r.y,
            }])
            .expect("submit");
    }

    // A blob targeting epoch 5 cannot be the fleet's next epoch (1):
    // every worker rejects it at prepare, and nothing flips.
    let extended = Arc::new(model.admit_concept(novel_classifier(&model), 0.2, 120));
    let blob = encode_model(&extended, 5).expect("encodes");
    let err = router.swap(&blob).expect_err("wrong-epoch blob");
    assert!(
        matches!(err, ClusterError::BadResponse { .. }),
        "expected a prepare rejection, got {err}"
    );
    for (w, worker) in workers.iter().enumerate() {
        assert_eq!(worker.engine().epoch(), 0, "worker {w} flipped anyway");
    }
    // The correctly-stamped blob then flips cleanly.
    let blob = encode_model(&extended, 1).expect("encodes");
    assert_eq!(router.swap(&blob).expect("fleet flip"), 1);
}
