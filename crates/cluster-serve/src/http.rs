//! The cluster's HTTP/1.1 plumbing: a blocking client with deadlines
//! and a small threaded server, both dependency-free.
//!
//! Same idiom as `hom-serve`'s `MetricsServer` — a
//! [`std::net::TcpListener`] accept loop, `Content-Length` +
//! `Connection: close`, one request per connection — extended with the
//! things the router/worker protocol needs beyond a metrics scrape:
//! **POST bodies** (request batches, snapshots, model blobs),
//! **deadlines** on every socket (a dead worker must surface as a typed
//! error within the configured timeout, never hang a router thread),
//! and **per-connection threads** on the server (a slow or idle client
//! ties up only its own thread, bounded by the read deadline and a
//! connection cap — never the accept loop or other requests).

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Bodies above this size are rejected by the server (64 MiB) — far
/// above any real model blob or batch, low enough that a corrupt
/// `Content-Length` cannot OOM a worker.
const MAX_BODY: usize = 64 << 20;

/// The request/status line plus headers must fit this budget (16 KiB,
/// either direction) — a peer streaming an endless header line cannot
/// grow a line buffer unboundedly (`MAX_BODY` bounds only bodies).
const MAX_HEAD: u64 = 16 << 10;

/// Concurrent connections one server handles. Accepts beyond the cap
/// are answered `503` immediately — shed, not queued behind slow peers.
const MAX_CONNECTIONS: usize = 64;

/// The distributed-trace propagation header. The value is
/// `hom_obs::TraceContext::to_header()` — two fixed-width lowercase hex
/// fields, `<trace_id>-<parent_span_id>`. Absent or malformed simply
/// means "untraced"; propagation can never fail a request.
pub const TRACE_HEADER: &str = "X-HOM-Trace";

/// An HTTP exchange that failed below the protocol level. The router
/// maps these onto `ClusterError::WorkerDown` — the cluster's
/// "never hang, never partial" contract rides on every socket
/// operation funneling into this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// TCP connect failed or timed out.
    Connect(String),
    /// The peer accepted the connection but the exchange died (reset,
    /// read/write timeout, premature close).
    Io(String),
    /// The peer spoke, but not HTTP this crate understands.
    Malformed(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Connect(what) => write!(f, "connect failed: {what}"),
            HttpError::Io(what) => write!(f, "request failed: {what}"),
            HttpError::Malformed(what) => write!(f, "malformed HTTP response: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed inbound request: method, path, body.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw request body (empty for bodyless requests).
    pub body: Vec<u8>,
    /// The [`TRACE_HEADER`] value, verbatim, when the client sent one.
    /// Handlers parse it with `hom_obs::TraceContext::parse`; a value
    /// that fails to parse is treated as absent.
    pub trace: Option<String>,
}

/// What a handler sends back.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status line text, e.g. `200 OK`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` with a text body.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        HttpResponse {
            status: "200 OK",
            content_type,
            body: body.into(),
        }
    }

    /// A `404 Not Found` with a plain-text reason.
    pub fn not_found(reason: &str) -> Self {
        HttpResponse {
            status: "404 Not Found",
            content_type: "text/plain",
            body: format!("{reason}\n").into_bytes(),
        }
    }

    /// A `400 Bad Request` with a plain-text reason.
    pub fn bad_request(reason: &str) -> Self {
        HttpResponse {
            status: "400 Bad Request",
            content_type: "text/plain",
            body: format!("{reason}\n").into_bytes(),
        }
    }

    /// A `503 Service Unavailable` with a plain-text reason — what the
    /// server sheds connections with at the concurrency cap.
    pub fn unavailable(reason: &str) -> Self {
        HttpResponse {
            status: "503 Service Unavailable",
            content_type: "text/plain",
            body: format!("{reason}\n").into_bytes(),
        }
    }
}

/// One blocking HTTP request with a deadline on every socket phase.
/// Returns the numeric status code and the response body.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<(u16, Vec<u8>), HttpError> {
    http_request_traced(addr, method, path, body, timeout, None)
}

/// [`http_request`] stamping a [`TRACE_HEADER`] when `trace` is `Some` —
/// how the router propagates a `hom_obs::TraceContext` (rendered via
/// `to_header()`) to workers.
pub fn http_request_traced(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
    trace: Option<&str>,
) -> Result<(u16, Vec<u8>), HttpError> {
    let conn = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| HttpError::Connect(e.to_string()))?;
    conn.set_read_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    conn.set_write_timeout(Some(timeout))
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let mut writer = conn.try_clone().map_err(|e| HttpError::Io(e.to_string()))?;
    let trace_line = match trace {
        Some(value) => format!("{TRACE_HEADER}: {value}\r\n"),
        None => String::new(),
    };
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{trace_line}Connection: close\r\n\r\n",
        body.len()
    )
    .map_err(|e| HttpError::Io(e.to_string()))?;
    writer
        .write_all(body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    writer.flush().map_err(|e| HttpError::Io(e.to_string()))?;

    let mut head = BufReader::new(conn).take(MAX_HEAD);
    let mut status_line = String::new();
    head.read_line(&mut status_line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if !status_line.ends_with('\n') && head.limit() == 0 {
        return Err(HttpError::Malformed("status line too long"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("status line"))?;
    let mut content_length: Option<usize> = None;
    let mut header = String::new();
    loop {
        header.clear();
        let n = head
            .read_line(&mut header)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if header == "\r\n" || header == "\n" {
            break;
        }
        if (n == 0 || !header.ends_with('\n')) && head.limit() == 0 {
            return Err(HttpError::Malformed("header section too large"));
        }
        if n == 0 {
            break;
        }
        if let Some(v) = header_value(&header, "content-length") {
            content_length = Some(
                v.parse()
                    .map_err(|_| HttpError::Malformed("content-length"))?,
            );
        }
    }
    let mut reader = head.into_inner();
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            if len > MAX_BODY {
                return Err(HttpError::Malformed("content-length too large"));
            }
            body.resize(len, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| HttpError::Io(e.to_string()))?;
        }
        None => {
            // Connection: close with no length — read to EOF.
            reader
                .read_to_end(&mut body)
                .map_err(|e| HttpError::Io(e.to_string()))?;
        }
    }
    Ok((status, body))
}

fn header_value<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let (key, value) = line.split_once(':')?;
    if key.trim().eq_ignore_ascii_case(name) {
        Some(value.trim())
    } else {
        None
    }
}

/// The handler a server dispatches every request to.
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A blocking HTTP server: one accept-loop thread, requests dispatched
/// to a [`Handler`]. Dropping the server stops the loop and joins it —
/// same lifecycle as `hom-serve`'s `MetricsServer`.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Bind `addr` (port `0` picks a free one; read it back with
    /// [`Self::addr`]) and serve `handler` on a background thread named
    /// `thread_name`.
    pub fn bind(addr: SocketAddr, thread_name: &str, handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn(move || accept_loop(listener, handler, loop_stop))?;
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, handler: Handler, stop: Arc<AtomicBool>) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(mut conn) = conn else { continue };
        conn_threads.retain(|h| !h.is_finished());
        // One thread per connection: a slow or idle peer ties up only
        // its own thread (bounded by the read deadline), never the
        // accept loop or other requests. Beyond the cap, shed promptly.
        if active.load(Ordering::Acquire) >= MAX_CONNECTIONS {
            let _ = write_response(&mut conn, &HttpResponse::unavailable("connection limit"));
            continue;
        }
        active.fetch_add(1, Ordering::AcqRel);
        let handler = Arc::clone(&handler);
        let thread_active = Arc::clone(&active);
        let spawned = std::thread::Builder::new()
            .name("hom-http-conn".to_string())
            .spawn(move || {
                // An I/O error drops the connection — a broken client
                // must never take the node down.
                let _ = serve_connection(&mut conn, &handler);
                thread_active.fetch_sub(1, Ordering::AcqRel);
            });
        match spawned {
            Ok(handle) => conn_threads.push(handle),
            // Spawn failure (thread exhaustion): the closure — and with
            // it the connection — was dropped without running.
            Err(_) => {
                active.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    // Dropping the server waits for in-flight requests, the same
    // lifecycle the old inline dispatch had.
    for handle in conn_threads {
        let _ = handle.join();
    }
}

fn serve_connection(conn: &mut TcpStream, handler: &Handler) -> std::io::Result<()> {
    // A peer that connects and never writes must not pin its thread
    // forever: every inbound socket gets a generous fixed deadline.
    conn.set_read_timeout(Some(Duration::from_secs(30)))?;
    conn.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut head = BufReader::new(conn.try_clone()?).take(MAX_HEAD);
    let mut request_line = String::new();
    head.read_line(&mut request_line)?;
    if !request_line.ends_with('\n') && head.limit() == 0 {
        return write_response(conn, &HttpResponse::bad_request("request line too long"));
    }
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return write_response(conn, &HttpResponse::bad_request("bad request line")),
    };
    let mut content_length = 0usize;
    let mut trace: Option<String> = None;
    let mut header = String::new();
    loop {
        header.clear();
        let n = head.read_line(&mut header)?;
        if header == "\r\n" || header == "\n" {
            break;
        }
        if (n == 0 || !header.ends_with('\n')) && head.limit() == 0 {
            return write_response(conn, &HttpResponse::bad_request("header section too large"));
        }
        if n == 0 {
            break;
        }
        if let Some(v) = header_value(&header, "content-length") {
            match v.parse::<usize>() {
                Ok(len) if len <= MAX_BODY => content_length = len,
                _ => return write_response(conn, &HttpResponse::bad_request("bad content-length")),
            }
        }
        if let Some(v) = header_value(&header, "x-hom-trace") {
            trace = Some(v.to_string());
        }
    }
    let mut reader = head.into_inner();
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let request = HttpRequest {
        method,
        path: target.split('?').next().unwrap_or(&target).to_string(),
        body,
        trace,
    };
    let response = handler(&request);
    write_response(conn, &response)
}

fn write_response(conn: &mut TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    write!(
        conn,
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.content_type,
        response.body.len()
    )?;
    conn.write_all(&response.body)?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            "test-echo",
            Arc::new(|req: &HttpRequest| match req.path.as_str() {
                "/echo" => HttpResponse::ok("application/octet-stream", req.body.clone()),
                "/hello" => HttpResponse::ok("text/plain", format!("{} ok", req.method)),
                "/trace-echo" => HttpResponse::ok(
                    "text/plain",
                    req.trace.clone().unwrap_or_else(|| "untraced".to_string()),
                ),
                _ => HttpResponse::not_found("nope"),
            }),
        )
        .expect("binds")
    }

    #[test]
    fn get_and_post_round_trip() {
        let server = echo_server();
        let t = Duration::from_secs(5);
        let (status, body) = http_request(server.addr(), "GET", "/hello", &[], t).unwrap();
        assert_eq!((status, body.as_slice()), (200, b"GET ok".as_slice()));

        let payload: Vec<u8> = (0..=255u8).collect();
        let (status, body) = http_request(server.addr(), "POST", "/echo", &payload, t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, payload, "binary body round-trips byte-exactly");

        let (status, _) = http_request(server.addr(), "GET", "/missing", &[], t).unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn trace_header_propagates_and_absence_means_untraced() {
        let server = echo_server();
        let t = Duration::from_secs(5);
        let ctx = "00000000deadbeef-0000000000000007";
        let (status, body) =
            http_request_traced(server.addr(), "GET", "/trace-echo", &[], t, Some(ctx)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, ctx.as_bytes(), "header value arrives verbatim");

        let (status, body) = http_request(server.addr(), "GET", "/trace-echo", &[], t).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"untraced", "no header means None, not empty");
    }

    #[test]
    fn a_slow_client_does_not_block_other_requests() {
        let server = echo_server();
        // An idle connection that never sends a request…
        let _idle = TcpStream::connect(server.addr()).expect("connects");
        // …must not stall a real client behind its 30s read deadline.
        let t0 = std::time::Instant::now();
        let (status, body) =
            http_request(server.addr(), "GET", "/hello", &[], Duration::from_secs(5))
                .expect("served concurrently");
        assert_eq!((status, body.as_slice()), (200, b"GET ok".as_slice()));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "request queued behind the idle connection"
        );
    }

    #[test]
    fn endless_header_line_is_rejected_not_buffered() {
        let server = echo_server();
        let mut conn = TcpStream::connect(server.addr()).expect("connects");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(conn, "GET /hello HTTP/1.1\r\nX-Junk: ").unwrap();
        // Stream far more header bytes than MAX_HEAD; the server must
        // answer 400 instead of buffering without bound. The write may
        // error once the server responds and closes — that's fine.
        let _ = conn.write_all(&vec![b'a'; 32 << 10]);
        let mut status_line = String::new();
        BufReader::new(conn).read_line(&mut status_line).unwrap();
        assert!(status_line.contains("400"), "{status_line:?}");
    }

    #[test]
    fn dead_peer_is_a_typed_error_not_a_hang() {
        // Bind then drop: the port is (very likely) unbound now.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = http_request(addr, "GET", "/healthz", &[], Duration::from_millis(500))
            .expect_err("nobody listening");
        assert!(
            matches!(err, HttpError::Connect(_) | HttpError::Io(_)),
            "{err}"
        );
    }
}
