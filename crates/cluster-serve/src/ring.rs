//! The consistent-hash ring that places streams on workers.
//!
//! Placement must be **deterministic** (the differential bar compares a
//! cluster run against a single engine, so routing may depend on
//! nothing but the stream id and the worker count) and **stable** (when
//! a worker joins or leaves, only the streams whose arc moved should
//! migrate — not a full reshuffle, which is the point of consistent
//! hashing over `stream_id % n`).
//!
//! Each worker contributes `vnodes` points hashed (FNV-1a, the repo's
//! standard digest) from its index; a stream id hashes to a point on
//! the same `u64` circle and is owned by the first worker point at or
//! after it, wrapping at the top. More vnodes → smoother balance;
//! the default ([`DEFAULT_VNODES`]) keeps the spread within a few
//! percent at three workers while the ring stays a small sorted `Vec`
//! the router binary-searches per request.

use hom_core::fnv1a;
use hom_serve::StreamId;

/// Default virtual nodes per worker ([`HashRing::new`] callers that
/// take the `HOM_CLUSTER_VNODES` knob fall back to this).
pub const DEFAULT_VNODES: usize = 64;

/// The ring: sorted `(point, worker)` pairs. Cheap to rebuild (a
/// worker-set change rebuilds it wholesale) and cheap to query
/// (binary search per stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    n_workers: usize,
    vnodes: usize,
}

impl HashRing {
    /// A ring over workers `0..n_workers`, each contributing `vnodes`
    /// points.
    ///
    /// # Panics
    /// Panics if either count is zero — an empty ring cannot own
    /// anything, and the router validates its configuration before
    /// building one.
    pub fn new(n_workers: usize, vnodes: usize) -> Self {
        assert!(n_workers > 0, "ring needs at least one worker");
        assert!(vnodes > 0, "ring needs at least one vnode per worker");
        let mut points = Vec::with_capacity(n_workers * vnodes);
        for worker in 0..n_workers {
            for v in 0..vnodes {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(worker as u64).to_le_bytes());
                key[8..].copy_from_slice(&(v as u64).to_le_bytes());
                points.push((fnv1a(&key), worker));
            }
        }
        // Ties (two vnodes hashing to one point) resolve to the lower
        // worker index, deterministically.
        points.sort_unstable();
        HashRing {
            points,
            n_workers,
            vnodes,
        }
    }

    /// The worker owning `stream`: the first ring point at or after the
    /// stream's hash, wrapping past the top.
    pub fn owner(&self, stream: StreamId) -> usize {
        let h = fnv1a(&stream.to_le_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, worker) = self.points[at % self.points.len()];
        worker
    }

    /// Number of workers on the ring.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Virtual nodes per worker.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_total() {
        let a = HashRing::new(3, DEFAULT_VNODES);
        let b = HashRing::new(3, DEFAULT_VNODES);
        for stream in 0..1000u64 {
            let w = a.owner(stream);
            assert!(w < 3);
            assert_eq!(w, b.owner(stream), "same inputs, same owner");
        }
    }

    #[test]
    fn balance_is_reasonable() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        for stream in 0..30_000u64 {
            counts[ring.owner(stream)] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            assert!(
                (4_000..=16_000).contains(&c),
                "worker {w} owns {c} of 30000 — pathological imbalance"
            );
        }
    }

    /// The consistent-hashing property: growing 3 → 4 workers moves
    /// only streams that now belong to the new worker; no stream moves
    /// *between* surviving workers.
    #[test]
    fn growth_only_moves_streams_to_the_new_worker() {
        let before = HashRing::new(3, DEFAULT_VNODES);
        let after = HashRing::new(4, DEFAULT_VNODES);
        let mut moved = 0usize;
        for stream in 0..10_000u64 {
            let (b, a) = (before.owner(stream), after.owner(stream));
            if b != a {
                assert_eq!(
                    a, 3,
                    "stream {stream} moved {b} -> {a}, not to the new worker"
                );
                moved += 1;
            }
        }
        assert!(moved > 0, "the new worker must own something");
        assert!(
            moved < 5_000,
            "{moved} of 10000 moved — not a consistent-hash reshuffle"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_empty_ring() {
        HashRing::new(0, 8);
    }
}
