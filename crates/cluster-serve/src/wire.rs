//! The router↔worker wire format: request batches and responses as
//! JSONL, snapshots as hex — human-readable with `curl`, parseable
//! without a JSON dependency, and bit-exact where it matters.
//!
//! One request per line, `op` discriminated — mirroring
//! `hom-serve`'s [`Request`] variants one-to-one:
//!
//! ```text
//! {"op":"predict","stream":7,"x":[1,0.5]}
//! {"op":"observe","stream":7,"x":[1,0.5],"y":1}
//! {"op":"step","stream":9,"x":[0,0.25],"y":0}
//! {"op":"advance","stream":9,"k":3}
//! ```
//!
//! and one response per line, in request order:
//!
//! ```text
//! {"stream":7,"prediction":1}
//! {"stream":9,"prediction":null}
//! ```
//!
//! Attribute values render with the shortest round-trip decimal
//! ([`hom_obs::jsonl::push_f64`]), so a finite `f64` parses back
//! **bit-identically** on the worker — the cluster differential bar
//! depends on it. Non-finite attributes are unrepresentable here by
//! design: the schema's row validation already rejects them at the
//! engine boundary, and this codec rejects them at encode time rather
//! than silently shipping `null`.
//!
//! Decoding is total: malformed lines are a typed [`WireError`] naming
//! the line, never a panic — a router must survive any bytes a confused
//! client POSTs at it.

use std::fmt;

use hom_obs::jsonl::push_f64;
use hom_serve::{Request, Response, StreamId};

/// Why a wire payload failed to encode or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A line (1-based) did not parse as the expected JSON shape.
    BadLine {
        /// 1-based line number within the payload.
        line: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// Encode-side: an attribute value was NaN or infinite — the JSONL
    /// wire cannot carry it (and the engine would reject it anyway).
    NonFiniteAttribute,
    /// A hex string had a non-hex digit or odd length.
    BadHex,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadLine { line, what } => write!(f, "wire line {line}: {what}"),
            WireError::NonFiniteAttribute => {
                write!(f, "non-finite attribute value cannot be encoded")
            }
            WireError::BadHex => write!(f, "invalid hex string"),
        }
    }
}

impl std::error::Error for WireError {}

fn push_xs(out: &mut String, x: &[f64]) -> Result<(), WireError> {
    out.push('[');
    for (i, &v) in x.iter().enumerate() {
        if !v.is_finite() {
            return Err(WireError::NonFiniteAttribute);
        }
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v);
    }
    out.push(']');
    Ok(())
}

/// Encode a request batch as JSONL (one request per line, batch order).
pub fn encode_requests(batch: &[Request]) -> Result<String, WireError> {
    let mut out = String::with_capacity(batch.len() * 48);
    for r in batch {
        match r {
            Request::Predict { stream, x } => {
                out.push_str("{\"op\":\"predict\",\"stream\":");
                out.push_str(&stream.to_string());
                out.push_str(",\"x\":");
                push_xs(&mut out, x)?;
            }
            Request::Observe { stream, x, y } => {
                out.push_str("{\"op\":\"observe\",\"stream\":");
                out.push_str(&stream.to_string());
                out.push_str(",\"x\":");
                push_xs(&mut out, x)?;
                out.push_str(",\"y\":");
                out.push_str(&y.to_string());
            }
            Request::Step { stream, x, y } => {
                out.push_str("{\"op\":\"step\",\"stream\":");
                out.push_str(&stream.to_string());
                out.push_str(",\"x\":");
                push_xs(&mut out, x)?;
                out.push_str(",\"y\":");
                out.push_str(&y.to_string());
            }
            Request::Advance { stream, k } => {
                out.push_str("{\"op\":\"advance\",\"stream\":");
                out.push_str(&stream.to_string());
                out.push_str(",\"k\":");
                out.push_str(&k.to_string());
            }
        }
        out.push_str("}\n");
    }
    Ok(out)
}

/// Decode a JSONL request batch (the worker's `/submit` input).
pub fn decode_requests(text: &str) -> Result<Vec<Request>, WireError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let err = |what| WireError::BadLine { line: i + 1, what };
        let mut p = JsonParser::new(line);
        let fields = p.object().map_err(err)?;
        let op = fields.str_field("op").map_err(err)?;
        let stream = fields.u64_field("stream").map_err(err)? as StreamId;
        let request = match op {
            "predict" => Request::Predict {
                stream,
                x: fields.f64_array_field("x").map_err(err)?,
            },
            "observe" => Request::Observe {
                stream,
                x: fields.f64_array_field("x").map_err(err)?,
                y: fields.u64_field("y").map_err(err)? as u32,
            },
            "step" => Request::Step {
                stream,
                x: fields.f64_array_field("x").map_err(err)?,
                y: fields.u64_field("y").map_err(err)? as u32,
            },
            "advance" => Request::Advance {
                stream,
                k: fields.u64_field("k").map_err(err)? as usize,
            },
            _ => return Err(err("unknown op")),
        };
        out.push(request);
    }
    Ok(out)
}

/// Encode responses as JSONL, one per line in batch order.
pub fn encode_responses(responses: &[Response]) -> String {
    let mut out = String::with_capacity(responses.len() * 32);
    for r in responses {
        out.push_str("{\"stream\":");
        out.push_str(&r.stream.to_string());
        out.push_str(",\"prediction\":");
        match r.prediction {
            Some(c) => out.push_str(&c.to_string()),
            None => out.push_str("null"),
        }
        out.push_str("}\n");
    }
    out
}

/// Decode a JSONL response payload (the router's `/submit` result).
pub fn decode_responses(text: &str) -> Result<Vec<Response>, WireError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let err = |what| WireError::BadLine { line: i + 1, what };
        let mut p = JsonParser::new(line);
        let fields = p.object().map_err(err)?;
        out.push(Response {
            stream: fields.u64_field("stream").map_err(err)?,
            prediction: fields
                .opt_u64_field("prediction")
                .map_err(err)?
                .map(|v| v as u32),
        });
    }
    Ok(out)
}

/// Snapshot bytes as lowercase hex (the migration payload — snapshots
/// are binary, JSONL lines are text).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode [`to_hex`] output.
pub fn from_hex(text: &str) -> Result<Vec<u8>, WireError> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return Err(WireError::BadHex);
    }
    let digit = |c: u8| -> Result<u8, WireError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(WireError::BadHex),
        }
    };
    let raw = text.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push(digit(pair[0])? << 4 | digit(pair[1])?);
    }
    Ok(out)
}

/// The minimal JSON value this wire speaks.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    /// A token of plain digits that fits `u64` — kept exact so stream
    /// ids above 2^53 never round through `f64`.
    Integer(u64),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
}

/// Parsed top-level object: field name → value, preserving nothing else.
pub(crate) struct JsonFields {
    fields: Vec<(String, JsonValue)>,
}

impl JsonFields {
    fn get(&self, name: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub(crate) fn str_field(&self, name: &str) -> Result<&str, &'static str> {
        match self.get(name) {
            Some(JsonValue::String(s)) => Ok(s),
            _ => Err("missing or non-string field"),
        }
    }

    pub(crate) fn u64_field(&self, name: &str) -> Result<u64, &'static str> {
        match self.get(name) {
            // Digit-only tokens parse straight to u64 (see number()),
            // so stream ids above 2^53 never round through f64.
            Some(&JsonValue::Integer(v)) => Ok(v),
            _ => Err("missing or non-integer field"),
        }
    }

    pub(crate) fn opt_u64_field(&self, name: &str) -> Result<Option<u64>, &'static str> {
        match self.get(name) {
            Some(JsonValue::Null) => Ok(None),
            Some(&JsonValue::Integer(v)) => Ok(Some(v)),
            _ => Err("missing or non-integer field"),
        }
    }

    /// Exact unsigned-integer array — the stream-id census path. Only
    /// integer tokens that fit `u64` are accepted: an id that arrived
    /// fractional, negative, or too large for `u64` (and therefore
    /// rounded through `f64`) is a typed error, never a silently wrong
    /// stream id handed to the migration protocol.
    pub(crate) fn u64_array_field(&self, name: &str) -> Result<Vec<u64>, &'static str> {
        match self.get(name) {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|v| match v {
                    &JsonValue::Integer(n) => Ok(n),
                    _ => Err("non-integer array element"),
                })
                .collect(),
            _ => Err("missing or non-array field"),
        }
    }

    pub(crate) fn f64_array_field(&self, name: &str) -> Result<Vec<f64>, &'static str> {
        match self.get(name) {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|v| match v {
                    JsonValue::Number(n) => Ok(*n),
                    // A whole-valued f64 rendered without fraction:
                    // both conversions round the same exact decimal to
                    // the nearest f64, so the bits round-trip.
                    &JsonValue::Integer(n) => Ok(n as f64),
                    _ => Err("non-numeric array element"),
                })
                .collect(),
            _ => Err("missing or non-array field"),
        }
    }
}

/// A recursive-descent reader for the subset of JSON this wire emits:
/// one object of string/number/null/array-of-number fields per line.
/// (The repo's JSONL idiom — `hom_obs::jsonl` — parses trace *events*;
/// this one parses protocol lines. Both avoid a JSON dependency.)
pub(crate) struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), &'static str> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err("unexpected character")
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    pub(crate) fn object(&mut self) -> Result<JsonFields, &'static str> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
        } else {
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b'}') => {
                        self.at += 1;
                        break;
                    }
                    _ => return Err("expected , or } in object"),
                }
            }
        }
        self.skip_ws();
        if self.at != self.bytes.len() {
            return Err("trailing bytes after object");
        }
        Ok(JsonFields { fields })
    }

    fn value(&mut self) -> Result<JsonValue, &'static str> {
        match self.peek().ok_or("unexpected end of line")? {
            b'"' => Ok(JsonValue::String(self.string()?)),
            b'[' => {
                self.at += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            break;
                        }
                        _ => return Err("expected , or ] in array"),
                    }
                }
                Ok(JsonValue::Array(items))
            }
            b'n' => {
                if self.bytes[self.at..].starts_with(b"null") {
                    self.at += 4;
                    Ok(JsonValue::Null)
                } else {
                    Err("bad literal")
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, &'static str> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at).ok_or("unterminated string")? {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.at += 1;
                    match self.bytes.get(self.at).ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        _ => return Err("unsupported escape"),
                    }
                    self.at += 1;
                }
                &b => {
                    // Multi-byte UTF-8 passes through untouched: the
                    // input is a &str, so the bytes are valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[self.at..self.at + utf8_len(b)])
                            .map_err(|_| "invalid utf-8")?,
                    );
                    self.at += utf8_len(b);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, &'static str> {
        self.skip_ws();
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|_| "bad number")?;
        if raw.is_empty() {
            return Err("expected a number");
        }
        // Digit-only tokens that fit u64 stay exact integers (stream
        // ids near u64::MAX must not round through f64). Everything
        // else — fractions, signs, and whole values too big for u64,
        // like 1e300's 301-digit rendering — parses as f64.
        if raw.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(v) = raw.parse::<u64>() {
                return Ok(JsonValue::Integer(v));
            }
        }
        let v: f64 = raw.parse().map_err(|_| "bad number")?;
        Ok(JsonValue::Number(v))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_bit_exactly() {
        let batch = vec![
            Request::Predict {
                stream: 7,
                x: vec![1.0, 0.5],
            },
            Request::Observe {
                stream: 8,
                x: vec![0.1 + 0.2, f64::MIN_POSITIVE],
                y: 1,
            },
            Request::Step {
                stream: u64::from(u32::MAX),
                x: vec![-0.0, 1e300],
                y: 0,
            },
            // u64::MAX exceeds f64's exact range — the id must survive.
            Request::Advance {
                stream: u64::MAX,
                k: 3,
            },
        ];
        let text = encode_requests(&batch).expect("finite batch encodes");
        let back = decode_requests(&text).expect("own encoding decodes");
        assert_eq!(back.len(), batch.len());
        for (a, b) in batch.iter().zip(&back) {
            match (a, b) {
                (
                    Request::Predict { stream: s1, x: x1 },
                    Request::Predict { stream: s2, x: x2 },
                ) => {
                    assert_eq!(s1, s2);
                    assert_eq!(bits(x1), bits(x2));
                }
                (
                    Request::Observe {
                        stream: s1,
                        x: x1,
                        y: y1,
                    },
                    Request::Observe {
                        stream: s2,
                        x: x2,
                        y: y2,
                    },
                )
                | (
                    Request::Step {
                        stream: s1,
                        x: x1,
                        y: y1,
                    },
                    Request::Step {
                        stream: s2,
                        x: x2,
                        y: y2,
                    },
                ) => {
                    assert_eq!((s1, y1), (s2, y2));
                    assert_eq!(bits(x1), bits(x2), "attribute bits diverged");
                }
                (
                    Request::Advance { stream: s1, k: k1 },
                    Request::Advance { stream: s2, k: k2 },
                ) => assert_eq!((s1, k1), (s2, k2)),
                other => panic!("variant mismatch: {other:?}"),
            }
        }
    }

    fn bits(x: &[f64]) -> Vec<u64> {
        x.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response {
                stream: 7,
                prediction: Some(1),
            },
            Response {
                stream: 9,
                prediction: None,
            },
        ];
        let text = encode_responses(&responses);
        assert_eq!(
            text,
            "{\"stream\":7,\"prediction\":1}\n{\"stream\":9,\"prediction\":null}\n"
        );
        assert_eq!(decode_responses(&text).unwrap(), responses);
    }

    #[test]
    fn non_finite_attributes_are_rejected_at_encode() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let batch = vec![Request::Predict {
                stream: 1,
                x: vec![bad],
            }];
            assert_eq!(encode_requests(&batch), Err(WireError::NonFiniteAttribute));
        }
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for (text, what) in [
            (
                "{\"op\":\"predict\",\"stream\":1}",
                "missing or non-array field",
            ),
            ("{\"op\":\"dance\",\"stream\":1,\"x\":[]}", "unknown op"),
            ("{\"stream\":1,\"x\":[1]}", "missing or non-string field"),
            ("not json", "unexpected character"),
            (
                "{\"op\":\"advance\",\"stream\":1,\"k\":2} trailing",
                "trailing bytes after object",
            ),
            // 20 nines overflow u64, fall back to f64 — and a rounded
            // stream id must be rejected, not silently truncated.
            (
                "{\"op\":\"advance\",\"stream\":99999999999999999999,\"k\":1}",
                "missing or non-integer field",
            ),
        ] {
            let err = decode_requests(text).expect_err(text);
            assert_eq!(err, WireError::BadLine { line: 1, what }, "{text}");
        }
        // Line numbers point at the offender.
        let two = "{\"stream\":1,\"prediction\":null}\nbroken\n";
        assert!(matches!(
            decode_responses(two),
            Err(WireError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn u64_array_field_keeps_large_ids_exact() {
        // u64::MAX exceeds f64's exact integer range: the census parse
        // must keep it bit-exact, or the rebalancer migrates wrong ids.
        let line = format!("{{\"streams\":[0,7,{}]}}", u64::MAX);
        let fields = JsonParser::new(&line).object().unwrap();
        assert_eq!(
            fields.u64_array_field("streams").unwrap(),
            vec![0, 7, u64::MAX]
        );
        // Fractional, negative, or u64-overflowing (rounded) elements
        // are typed errors, never truncated ids.
        for bad in [
            "{\"streams\":[1.5]}",
            "{\"streams\":[-1]}",
            "{\"streams\":[99999999999999999999]}",
            "{\"streams\":7}",
        ] {
            let fields = JsonParser::new(bad).object().unwrap();
            assert!(fields.u64_array_field("streams").is_err(), "{bad}");
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("abc").unwrap_err(), WireError::BadHex);
        assert_eq!(from_hex("zz").unwrap_err(), WireError::BadHex);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
