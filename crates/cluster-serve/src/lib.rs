//! `hom-cluster-serve` — multi-node serving: a consistent-hash router
//! over a fleet of worker engines, with stream migration and
//! epoch-coordinated model hot-swap.
//!
//! `hom-serve` scales one [`ServeEngine`](hom_serve::ServeEngine)
//! across cores; this crate scales the same serving contract across
//! **processes and machines**, keeping the repo's central invariant:
//! per stream, a cluster is **bit-identical** — predictions *and*
//! posteriors — to a single engine fed the same requests. Sharding a
//! fleet of streams over workers is pure execution policy, exactly as
//! shard/thread counts are within one engine.
//!
//! ```text
//!              clients (JSONL over HTTP)
//!                        │
//!                 ┌──────▼──────┐
//!                 │ RouterServer│  /submit /swap /metrics /cluster
//!                 │   Router    │  consistent-hash ring (stream → worker)
//!                 └──┬───┬───┬──┘
//!         ┌──────────┘   │   └──────────┐
//!  ┌──────▼─────┐ ┌──────▼─────┐ ┌──────▼─────┐
//!  │WorkerServer│ │WorkerServer│ │WorkerServer│   /submit /migrate/*
//!  │ ServeEngine│ │ ServeEngine│ │ ServeEngine│   /swap/*  /quiesce
//!  └────────────┘ └────────────┘ └────────────┘   /metrics /healthz
//! ```
//!
//! The pieces, bottom-up:
//!
//! * [`http`] — the dependency-free HTTP/1.1 plumbing (blocking client
//!   with deadlines, threaded server). A dead worker is a typed error
//!   within the timeout, never a hang.
//! * [`wire`] — JSONL request/response codec mirroring
//!   [`hom_serve::Request`], with shortest-round-trip float rendering
//!   so attribute values cross the wire **bit-exactly** (the same
//!   property `hom-serve`'s introspection API relies on).
//! * [`ring`] — the consistent-hash ring (FNV-1a, virtual nodes).
//!   Deterministic placement; a worker join moves only the streams the
//!   new worker now owns.
//! * [`worker`] — a [`ServeEngine`](hom_serve::ServeEngine) behind the
//!   cluster protocol: batch serving, migration in/out
//!   ([`hom_serve::ServeEngine::extract`] /
//!   [`hom_serve::ServeEngine::restore`]), two-phase model swap,
//!   quiesce, metrics.
//! * [`router`] — topology + forwarding + the cluster's consistency
//!   story: traffic under a read lock, migration/swap under the write
//!   lock, all-or-nothing batches, federated `/metrics` and `/cluster`
//!   fleet health.
//!
//! # Stream migration
//!
//! A stream's whole serving state is its compact filter state —
//! posterior over concepts, prune order, evidence accumulators (the
//! quantities of Eqs. 5–9 of the paper) — which the snapshot codec
//! serializes losslessly. Migration is therefore *copy the bytes,
//! install on the target, then evict the source*, two-phase so a
//! failure never loses state: `/migrate/snapshot` takes a
//! non-destructive copy ([`hom_serve::ServeEngine::snapshot`]),
//! `/migrate/in` restores it on the target, and only after that ack
//! does `/migrate/evict` remove the source copy
//! ([`hom_serve::ServeEngine::extract`]) — until then the source,
//! including its durable store, stays authoritative. The stream
//! continues on the new worker with the identical posterior it would
//! have had anywhere else. Snapshots recorded before a model swap (a
//! parked or store-tiered stream) migrate forward on arrival, so
//! rebalancing composes with hot-swap in any order.
//!
//! # Cluster-wide hot-swap
//!
//! When `hom-adapt` admits a new concept (the paper's §IV loop:
//! admission extends the model, Eq. 6 statistics grow), the fleet must
//! flip as one: Eq. 10's ensemble weights are posteriors over the
//! model's concept set, so two workers serving different concept sets
//! would be two different models. [`Router::swap`] two-phases the flip
//! — distribute + stage the encoded model (`hom_core::model_codec`,
//! the `HOMM` blob) on every worker, then commit the pointer swap
//! fleet-wide under the routing write lock. `AdaptiveEngine`'s
//! swap-propagator seam (`hom_adapt::SwapPropagator`) hooks admissions
//! straight into this path.
//!
//! # Quick start
//!
//! In-process (tests do exactly this; production runs each piece in
//! its own process — see `OPERATIONS.md` and
//! `examples/cluster_smoke.rs`):
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use hom_serve::{Request, ServeEngine, ServeTelemetry, ServeOptions};
//! # fn model() -> Arc<hom_core::HighOrderModel> { unimplemented!() }
//! use hom_cluster_serve::{Router, RouterServer, WorkerServer, DEFAULT_VNODES};
//!
//! // Three workers, each its own engine (normally: own process).
//! let workers: Vec<WorkerServer> = (0..3)
//!     .map(|_| {
//!         let telemetry = Arc::new(ServeTelemetry::new());
//!         let engine = Arc::new(ServeEngine::with_options(
//!             model(),
//!             &ServeOptions { sink: telemetry.obs(), ..Default::default() },
//!         ));
//!         WorkerServer::bind("127.0.0.1:0".parse().unwrap(), engine, telemetry).unwrap()
//!     })
//!     .collect();
//! let router = Arc::new(Router::new(
//!     workers.iter().map(|w| w.addr()).collect(),
//!     DEFAULT_VNODES,
//!     Duration::from_secs(5),
//! ).unwrap());
//! let server = RouterServer::bind("127.0.0.1:0".parse().unwrap(), Arc::clone(&router)).unwrap();
//!
//! // Clients talk to the router exactly like a single engine:
//! let responses = router.submit(&[Request::Step { stream: 7, x: vec![0.0], y: 1 }]).unwrap();
//! assert_eq!(responses.len(), 1);
//! # drop(server);
//! ```
//!
//! # Environment knobs
//!
//! | variable | meaning |
//! |---|---|
//! | `HOM_CLUSTER_WORKERS` | comma-separated worker `ip:port` list ([`ClusterConfig::from_env`]) |
//! | `HOM_WORKER_ADDR` | the address a worker process binds |
//! | `HOM_CLUSTER_VNODES` | virtual nodes per worker on the ring (default 64) |
//! | `HOM_CLUSTER_TIMEOUT_MS` | per-exchange worker timeout (default 5000) |
//!
//! All follow the repo's no-silent-fallback convention: a
//! set-but-malformed value is a typed [`ClusterConfigError`].

#![warn(missing_docs)]

pub mod http;
pub mod ring;
pub mod router;
pub mod wire;
pub mod worker;

pub use http::{http_request, HttpError, HttpRequest, HttpResponse, HttpServer};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{
    ClusterConfig, ClusterConfigError, ClusterError, RebalanceReport, Router, RouterServer,
    WorkerStatus, CLUSTER_TIMEOUT_MS_ENV, CLUSTER_VNODES_ENV, CLUSTER_WORKERS_ENV, WORKER_ADDR_ENV,
};
pub use wire::WireError;
pub use worker::WorkerServer;
