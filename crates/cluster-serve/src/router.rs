//! The router: the cluster's one smart node.
//!
//! A [`Router`] owns the topology — the worker address list and the
//! [`HashRing`] placing streams on them — behind a single `RwLock`
//! whose two lock modes are the cluster's whole consistency story:
//!
//! * **read lock** — traffic. [`Router::submit`] splits a batch by ring
//!   owner, forwards each sub-batch in parallel, and merges the
//!   responses back into request order. Any number of batches run
//!   concurrently.
//! * **write lock** — reconfiguration. [`Router::swap`] (cluster-wide
//!   model flip) and [`Router::add_worker`] / [`Router::remove_worker`]
//!   (rebalancing migration) hold it exclusively, so no batch is in
//!   flight while ownership or the model epoch changes. That is what
//!   makes the cluster bit-identical to one engine: a request either
//!   runs entirely before a migration/swap or entirely after it, never
//!   astride.
//!
//! # The two-phase swap
//!
//! `swap` distributes one `HOMM` blob (`hom_core::encode_model`) to
//! every worker's `/swap/prepare` — each decodes, validates, and checks
//! the blob targets its next epoch — and only when **all** workers have
//! staged does it send `/swap/commit`. A worker that fails prepare
//! aborts the whole swap with every worker still serving the old model;
//! by commit time the flip is a decoded-model pointer swap per worker,
//! done under the routing write lock, so the fleet transitions
//! epoch N → N+1 as one atomic step. No worker ever serves a mixed
//! epoch (the differential test drives traffic across a swap and
//! asserts bit-identity with a single engine's
//! [`hom_serve::ServeEngine::swap_model`]).
//!
//! # Rebalancing
//!
//! Worker join/leave recomputes the ring, takes a census of every
//! worker's streams (`/cluster/info`, exact-integer ids — never rounded
//! through `f64`), and migrates exactly the ids whose owner changed.
//! Each move is **two-phase**: `/migrate/snapshot` on the source (a
//! non-destructive copy) → `/migrate/in` on the target (restore;
//! older-epoch snapshots migrate forward on arrival) → `/migrate/evict`
//! on the source, only after the target's ack. A failure at any point
//! before the evict leaves the authoritative copy — including its
//! durable-store snapshot — on the source; state is never lost to a
//! dead target. The consistent-hash ring keeps the moved set small on
//! join — only streams landing on the new worker move (see
//! [`crate::ring`]).
//!
//! # Failure semantics
//!
//! Every worker exchange funnels into [`ClusterError`] — a typed,
//! prompt error naming the worker. A batch is **all or nothing**: if
//! any sub-batch fails, [`Router::submit`] returns the error and no
//! partial `Vec` (the sub-batches that did land have mutated those
//! workers' streams, which the error reports so an operator can decide
//! between retry and recovery — the safe default is to restart the
//! worker from its durable store and retry the batch).

use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use hom_core::model_epoch;
use hom_obs::trace::DUMP_CAP;
use hom_obs::{trace_sample_from_env, Obs, TraceBuffer, TraceContext};
use hom_serve::{Request, Response, StreamId};

use crate::http::{http_request_traced, HttpError, HttpRequest, HttpResponse, HttpServer};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::wire::{self, JsonParser};

/// Comma-separated worker addresses the router serves
/// (e.g. `127.0.0.1:7101,127.0.0.1:7102`). Read by
/// [`ClusterConfig::from_env`]; required there — a router with no
/// workers cannot route.
pub const CLUSTER_WORKERS_ENV: &str = "HOM_CLUSTER_WORKERS";

/// The `ip:port` a worker process binds the cluster protocol on
/// (`examples/cluster_smoke.rs` reads it; port 0 picks a free port).
pub const WORKER_ADDR_ENV: &str = "HOM_WORKER_ADDR";

/// Virtual nodes per worker on the ring (default
/// [`DEFAULT_VNODES`]). Placement-changing: every node of a cluster
/// must agree on it, so it is read once by the router.
pub const CLUSTER_VNODES_ENV: &str = "HOM_CLUSTER_VNODES";

/// Per-exchange worker timeout in milliseconds (default 5000). Bounds
/// how long a dead worker can stall a batch before it surfaces as
/// [`ClusterError::WorkerDown`].
pub const CLUSTER_TIMEOUT_MS_ENV: &str = "HOM_CLUSTER_TIMEOUT_MS";

const DEFAULT_TIMEOUT_MS: u64 = 5000;

/// A rejected cluster configuration — same convention as
/// `hom_serve::ConfigError`: a knob the operator set deliberately is a
/// typed error when malformed, never a silent fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// [`CLUSTER_WORKERS_ENV`] is unset or empty.
    MissingWorkers,
    /// An entry in [`CLUSTER_WORKERS_ENV`] is not an `ip:port` address.
    InvalidWorkerAddr {
        /// The rejected entry, verbatim.
        got: String,
    },
    /// A numeric knob did not parse as a positive integer.
    InvalidNumber {
        /// The environment variable at fault.
        env: &'static str,
        /// The rejected value, verbatim.
        got: String,
    },
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterConfigError::MissingWorkers => {
                write!(
                    f,
                    "{CLUSTER_WORKERS_ENV} is unset or empty; a router needs at least one \
                     worker address (comma-separated ip:port list)"
                )
            }
            ClusterConfigError::InvalidWorkerAddr { got } => {
                write!(
                    f,
                    "invalid worker address {got:?} in {CLUSTER_WORKERS_ENV}: expected ip:port"
                )
            }
            ClusterConfigError::InvalidNumber { env, got } => {
                write!(f, "invalid {env}={got}: expected a positive integer")
            }
        }
    }
}

impl std::error::Error for ClusterConfigError {}

/// The router's startup knobs, resolved from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker addresses, in ring index order.
    pub workers: Vec<SocketAddr>,
    /// Virtual nodes per worker on the [`HashRing`].
    pub vnodes: usize,
    /// Per-exchange worker timeout.
    pub timeout: Duration,
}

impl ClusterConfig {
    /// Read [`CLUSTER_WORKERS_ENV`], [`CLUSTER_VNODES_ENV`] and
    /// [`CLUSTER_TIMEOUT_MS_ENV`]. Missing optional knobs take their
    /// defaults; set-but-malformed values are typed errors.
    pub fn from_env() -> Result<Self, ClusterConfigError> {
        let raw = std::env::var(CLUSTER_WORKERS_ENV).unwrap_or_default();
        let mut workers = Vec::new();
        for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            workers.push(
                part.parse()
                    .map_err(|_| ClusterConfigError::InvalidWorkerAddr {
                        got: part.to_string(),
                    })?,
            );
        }
        if workers.is_empty() {
            return Err(ClusterConfigError::MissingWorkers);
        }
        let number = |env: &'static str, default: u64| -> Result<u64, ClusterConfigError> {
            match std::env::var(env) {
                Ok(v) if !v.is_empty() => v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or(ClusterConfigError::InvalidNumber { env, got: v }),
                _ => Ok(default),
            }
        };
        let vnodes = number(CLUSTER_VNODES_ENV, DEFAULT_VNODES as u64)? as usize;
        let timeout = Duration::from_millis(number(CLUSTER_TIMEOUT_MS_ENV, DEFAULT_TIMEOUT_MS)?);
        Ok(ClusterConfig {
            workers,
            vnodes,
            timeout,
        })
    }
}

/// Why a cluster operation failed. Always prompt (sockets carry
/// deadlines) and always total (a failed batch returns this, never a
/// partial response `Vec`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The topology has no workers (all removed).
    NoWorkers,
    /// A worker could not be reached, timed out, or dropped the
    /// connection mid-exchange.
    WorkerDown {
        /// Ring index of the worker.
        worker: usize,
        /// Its address.
        addr: SocketAddr,
        /// The transport-level failure.
        what: String,
    },
    /// A worker answered, but with a non-200 status or a payload the
    /// router could not parse.
    BadResponse {
        /// Ring index of the worker.
        worker: usize,
        /// What was wrong (worker's error body, or the parse failure).
        what: String,
    },
    /// During a two-phase swap, a worker staged or landed on a
    /// different epoch than the rest of the fleet — the flip was
    /// aborted (at prepare) or must be treated as a cluster invariant
    /// violation (at commit).
    EpochDisagreement {
        /// Ring index of the disagreeing worker.
        worker: usize,
        /// The epoch it reported.
        got: u32,
        /// The epoch the fleet agreed on.
        expected: u32,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoWorkers => write!(f, "cluster has no workers"),
            ClusterError::WorkerDown { worker, addr, what } => {
                write!(f, "worker {worker} ({addr}) is unreachable: {what}")
            }
            ClusterError::BadResponse { worker, what } => {
                write!(f, "worker {worker} returned a bad response: {what}")
            }
            ClusterError::EpochDisagreement {
                worker,
                got,
                expected,
            } => write!(
                f,
                "worker {worker} is at epoch {got}, fleet expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// What a rebalance ([`Router::add_worker`] / [`Router::remove_worker`])
/// moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Streams migrated to a new owner.
    pub migrated: usize,
    /// Workers on the ring after the change.
    pub workers: usize,
}

/// One worker's row in [`Router::cluster_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// Ring index.
    pub worker: usize,
    /// Address.
    pub addr: SocketAddr,
    /// Whether `/healthz` answered.
    pub healthy: bool,
    /// The worker's model epoch (0 when unreachable).
    pub epoch: u32,
    /// Live streams resident on it (0 when unreachable).
    pub live: u64,
    /// Parked streams it holds (0 when unreachable).
    pub parked: u64,
}

/// The worker set and its ring, swapped as one unit under the routing
/// lock.
struct Topology {
    workers: Vec<SocketAddr>,
    ring: HashRing,
}

/// The consistent-hash router over a fleet of [`crate::WorkerServer`]s.
/// See the module docs for the locking discipline.
pub struct Router {
    topology: RwLock<Topology>,
    vnodes: usize,
    timeout: Duration,
    /// The router's own span sink: just a [`TraceBuffer`] — the router
    /// has no aggregates worth keeping, its spans exist to stitch the
    /// cross-process tree together.
    obs: Obs,
    traces: Arc<TraceBuffer>,
    /// Batch sequence number: the identity [`TraceContext::for_batch`]
    /// derives trace ids from, and the counter the `HOM_TRACE_SAMPLE`
    /// gate runs on.
    seq: AtomicU64,
    /// Health-probe sweep counter ([`TraceContext::for_probe`]).
    probe_seq: AtomicU64,
    /// Most recent trace id the router originated (0 = none yet) —
    /// what `Router::last_trace_id` reports so a smoke test (or an
    /// operator script) can fetch a live trace without guessing ids.
    last_trace: AtomicU64,
    /// Trace 1 in N batches (`HOM_TRACE_SAMPLE`, default 1 = all).
    sample: u64,
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.read();
        f.debug_struct("Router")
            .field("workers", &t.workers)
            .field("vnodes", &self.vnodes)
            .finish()
    }
}

impl Router {
    /// A router over `workers` (ring index = position in the slice).
    /// Returns [`ClusterError::NoWorkers`] on an empty list.
    ///
    /// # Panics
    ///
    /// On a set-but-malformed `$HOM_TRACE_BUFFER` or `$HOM_TRACE_SAMPLE`
    /// — the workspace's no-silent-fallback convention (as in
    /// `Obs::from_env`).
    pub fn new(
        workers: Vec<SocketAddr>,
        vnodes: usize,
        timeout: Duration,
    ) -> Result<Self, ClusterError> {
        if workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        let ring = HashRing::new(workers.len(), vnodes);
        let traces = Arc::new(TraceBuffer::from_env().unwrap_or_else(|e| panic!("{e}")));
        let sample = trace_sample_from_env().unwrap_or_else(|e| panic!("{e}"));
        Ok(Router {
            topology: RwLock::new(Topology { workers, ring }),
            vnodes,
            timeout,
            obs: Obs::new(Arc::clone(&traces)),
            traces,
            seq: AtomicU64::new(0),
            probe_seq: AtomicU64::new(0),
            last_trace: AtomicU64::new(0),
            sample,
        })
    }

    /// A router from a resolved [`ClusterConfig`].
    pub fn from_config(config: &ClusterConfig) -> Result<Self, ClusterError> {
        Self::new(config.workers.clone(), config.vnodes, config.timeout)
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Topology> {
        self.topology.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Topology> {
        self.topology.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Current worker addresses, ring index order.
    pub fn workers(&self) -> Vec<SocketAddr> {
        self.read().workers.clone()
    }

    /// The ring owner of `stream` under the current topology.
    pub fn owner(&self, stream: StreamId) -> usize {
        self.read().ring.owner(stream)
    }

    /// One POST/GET to worker `w` of `topology`, all failure modes
    /// mapped onto [`ClusterError`]. Non-200 statuses become
    /// [`ClusterError::BadResponse`] carrying the worker's error body.
    fn exchange(
        &self,
        topology: &Topology,
        worker: usize,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Vec<u8>, ClusterError> {
        self.exchange_at(worker, topology.workers[worker], method, path, body)
    }

    /// [`Self::exchange`] stamping a [`crate::http::TRACE_HEADER`] so
    /// the worker's spans join the router's trace (`ctx.parent_span_id`
    /// names the router span the worker's work hangs under).
    fn exchange_traced(
        &self,
        topology: &Topology,
        worker: usize,
        method: &str,
        path: &str,
        body: &[u8],
        ctx: TraceContext,
    ) -> Result<Vec<u8>, ClusterError> {
        self.exchange_at_traced(
            worker,
            topology.workers[worker],
            method,
            path,
            body,
            Some(ctx),
        )
    }

    /// [`Self::exchange`] addressed directly — for workers not (yet) in
    /// the current topology, such as a joining worker mid-rebalance, or
    /// probes running outside the topology lock. `worker` is the ring
    /// index errors are reported under.
    fn exchange_at(
        &self,
        worker: usize,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Vec<u8>, ClusterError> {
        self.exchange_at_traced(worker, addr, method, path, body, None)
    }

    /// [`Self::exchange_at`] with an optional trace context to stamp.
    fn exchange_at_traced(
        &self,
        worker: usize,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
        ctx: Option<TraceContext>,
    ) -> Result<Vec<u8>, ClusterError> {
        let header = ctx.filter(TraceContext::is_active).map(|c| c.to_header());
        let (status, payload) =
            http_request_traced(addr, method, path, body, self.timeout, header.as_deref())
                .map_err(|e: HttpError| ClusterError::WorkerDown {
                    worker,
                    addr,
                    what: e.to_string(),
                })?;
        if status != 200 {
            return Err(ClusterError::BadResponse {
                worker,
                what: format!(
                    "{path} -> {status}: {}",
                    String::from_utf8_lossy(&payload).trim()
                ),
            });
        }
        Ok(payload)
    }

    /// Apply a batch across the cluster: split by ring owner, forward
    /// the sub-batches in parallel, merge responses back into request
    /// order. All or nothing — any worker failure fails the whole batch
    /// with a typed error (no partial `Vec`, no hang; every socket has
    /// a deadline).
    pub fn submit(&self, batch: &[Request]) -> Result<Vec<Response>, ClusterError> {
        let topology = self.read();
        if topology.workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        // Trace identity is derived from the batch sequence number —
        // deterministic, so the same traffic yields the same trace ids
        // on every run and at every thread count. The `HOM_TRACE_SAMPLE`
        // gate picks 1 in N batches; everything below checks `traced`
        // before opening a span, so unsampled batches skip tracing
        // entirely (tracing on vs off is bit-identical in responses —
        // spans never touch the payload).
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let traced = seq.is_multiple_of(self.sample);
        let ctx = TraceContext::for_batch(seq);
        if traced {
            self.last_trace.store(ctx.trace_id, Ordering::Relaxed);
        }
        let _scope = traced.then(|| self.obs.trace_scope(ctx));
        let route_span = traced.then(|| self.obs.span("cluster.route"));
        let route_id = route_span.as_ref().map_or(0, |s| s.id());
        // Request indices per owner, batch order within each owner —
        // per-stream order is preserved because a stream has one owner.
        let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); topology.workers.len()];
        for (i, r) in batch.iter().enumerate() {
            per_worker[topology.ring.owner(r.stream())].push(i);
        }
        let mut sub_batches = Vec::new();
        for (w, idx) in per_worker.iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            let requests: Vec<Request> = idx.iter().map(|&i| batch[i].clone()).collect();
            let body = wire::encode_requests(&requests).map_err(|e| ClusterError::BadResponse {
                worker: w,
                what: format!("unencodable batch: {e}"),
            })?;
            sub_batches.push((w, idx, body));
        }
        // Forward in parallel: scoped threads, one per occupied worker
        // (bounded by the worker count, so no pool is needed).
        let results: Vec<Result<Vec<u8>, ClusterError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = sub_batches
                .iter()
                .map(|(w, _, body)| {
                    let topology = &topology;
                    scope.spawn(move || {
                        // Thread-locals don't cross the spawn: install
                        // the trace on the forwarder thread so its
                        // `cluster.forward` span hangs under the route
                        // span, and the worker's spans hang under the
                        // forward span (via the wire header).
                        let _scope = traced.then(|| self.obs.trace_scope(ctx.child(route_id)));
                        let fwd = traced.then(|| self.obs.span("cluster.forward"));
                        let hop = fwd.as_ref().map(|s| ctx.child(s.id()));
                        self.exchange_at_traced(
                            *w,
                            topology.workers[*w],
                            "POST",
                            "/submit",
                            body.as_bytes(),
                            hop,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("forwarder thread never panics"))
                .collect()
        });
        let _merge_span = traced.then(|| self.obs.span("cluster.merge"));
        let mut out: Vec<Option<Response>> = vec![None; batch.len()];
        for ((w, idx, _), result) in sub_batches.iter().zip(results) {
            let payload = result?;
            let text = String::from_utf8(payload).map_err(|_| ClusterError::BadResponse {
                worker: *w,
                what: "non-UTF-8 submit response".to_string(),
            })?;
            let responses =
                wire::decode_responses(&text).map_err(|e| ClusterError::BadResponse {
                    worker: *w,
                    what: e.to_string(),
                })?;
            if responses.len() != idx.len() {
                return Err(ClusterError::BadResponse {
                    worker: *w,
                    what: format!(
                        "submit returned {} responses for {} requests",
                        responses.len(),
                        idx.len()
                    ),
                });
            }
            for (&i, r) in idx.iter().zip(responses) {
                out[i] = Some(r);
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every request index was assigned to exactly one worker"))
            .collect())
    }

    /// Flip the whole fleet to the model in `blob` (a `HOMM` blob from
    /// [`hom_core::encode_model`], stamped with the fleet's next epoch)
    /// — two-phase, under the routing write lock, so no batch runs
    /// against a mixed-epoch cluster. Returns the committed epoch.
    ///
    /// If any worker fails `prepare`, the swap aborts with every worker
    /// still serving the old model. A failure at `commit` is reported
    /// as-is (the fleet may be split-epoch; the error names the worker
    /// — recover by restarting it, which re-syncs through a fresh
    /// prepare/commit).
    pub fn swap(&self, blob: &[u8]) -> Result<u32, ClusterError> {
        let topology = self.write();
        if topology.workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        let Some(epoch) = model_epoch(blob) else {
            return Err(ClusterError::BadResponse {
                worker: 0,
                what: "swap body is not a HOMM model blob".to_string(),
            });
        };
        // Swaps are reconfiguration-rate, so they are always traced
        // (no sampling): trace id derived from the target epoch, both
        // phases on every worker under one root span.
        let ctx = TraceContext::for_swap(epoch as u64);
        self.last_trace.store(ctx.trace_id, Ordering::Relaxed);
        let _scope = self.obs.trace_scope(ctx);
        let root = self.obs.span("cluster.swap");
        let hop = ctx.child(root.id());
        // Phase 1: every worker decodes, validates and stages the model
        // while still serving the old epoch.
        for w in 0..topology.workers.len() {
            let payload = self.exchange_traced(&topology, w, "POST", "/swap/prepare", blob, hop)?;
            let staged = parse_epoch(&payload).ok_or_else(|| ClusterError::BadResponse {
                worker: w,
                what: "prepare response carried no epoch".to_string(),
            })?;
            if staged != epoch {
                return Err(ClusterError::EpochDisagreement {
                    worker: w,
                    got: staged,
                    expected: epoch,
                });
            }
        }
        // Phase 2: flip. Cheap per worker (pointer swap + state
        // migration of its streams), all under this write lock.
        let body = format!("{{\"epoch\":{epoch}}}");
        for w in 0..topology.workers.len() {
            let payload =
                self.exchange_traced(&topology, w, "POST", "/swap/commit", body.as_bytes(), hop)?;
            let committed = parse_epoch(&payload).ok_or_else(|| ClusterError::BadResponse {
                worker: w,
                what: "commit response carried no epoch".to_string(),
            })?;
            if committed != epoch {
                return Err(ClusterError::EpochDisagreement {
                    worker: w,
                    got: committed,
                    expected: epoch,
                });
            }
        }
        Ok(epoch)
    }

    /// Add a worker and migrate onto it exactly the streams the grown
    /// ring assigns to it (the consistent-hash property: no stream
    /// moves between surviving workers).
    pub fn add_worker(&self, addr: SocketAddr) -> Result<RebalanceReport, ClusterError> {
        let mut topology = self.write();
        let mut workers = topology.workers.clone();
        workers.push(addr);
        let ring = HashRing::new(workers.len(), self.vnodes);
        let migrated = self.rebalance(&topology, &workers, &ring)?;
        *topology = Topology { workers, ring };
        Ok(RebalanceReport {
            migrated,
            workers: topology.workers.len(),
        })
    }

    /// Remove the worker at ring index `index`, first migrating every
    /// stream it holds (and any stream the shrunk ring re-homes) to the
    /// surviving workers. The worker itself is left running and empty —
    /// decommissioning the process is the operator's step.
    pub fn remove_worker(&self, index: usize) -> Result<RebalanceReport, ClusterError> {
        let mut topology = self.write();
        if index >= topology.workers.len() {
            return Err(ClusterError::BadResponse {
                worker: index,
                what: "no such worker index".to_string(),
            });
        }
        if topology.workers.len() == 1 {
            return Err(ClusterError::NoWorkers);
        }
        let mut workers = topology.workers.clone();
        workers.remove(index);
        let ring = HashRing::new(workers.len(), self.vnodes);
        let migrated = self.rebalance(&topology, &workers, &ring)?;
        *topology = Topology { workers, ring };
        Ok(RebalanceReport {
            migrated,
            workers: topology.workers.len(),
        })
    }

    /// Move every stream whose owner under (`new_workers`, `new_ring`)
    /// differs from the worker currently holding it, each via the
    /// two-phase [`Self::move_stream`]. Runs under the caller's write
    /// lock; the old topology still routes the migration traffic (the
    /// new owner is addressed directly — it may be a joining worker).
    fn rebalance(
        &self,
        old: &Topology,
        new_workers: &[SocketAddr],
        new_ring: &HashRing,
    ) -> Result<usize, ClusterError> {
        let mut migrated = 0usize;
        for (w, &addr) in old.workers.iter().enumerate() {
            let payload = self.exchange(old, w, "GET", "/cluster/info", &[])?;
            let streams = parse_streams(&payload).ok_or_else(|| ClusterError::BadResponse {
                worker: w,
                what: "unparseable /cluster/info".to_string(),
            })?;
            for stream in streams {
                let target_idx = new_ring.owner(stream);
                // The target is addressed directly: it may not be in
                // `old` (a joining worker).
                let target = new_workers[target_idx];
                if target == addr {
                    continue;
                }
                self.move_stream(stream, w, addr, target_idx, target)?;
                migrated += 1;
            }
        }
        Ok(migrated)
    }

    /// Move one stream from `from` to `to`, two-phase so a failed
    /// migration never loses state: copy a **non-destructive** snapshot
    /// off the source (`/migrate/snapshot`), install it on the target
    /// (`/migrate/in`), and only after the target's ack evict the
    /// source copy (`/migrate/evict`). A failure at any step before the
    /// evict leaves the authoritative copy — including its durable
    /// store snapshot — untouched on the source. A failure at the evict
    /// itself leaves a harmless duplicate on the target: the caller
    /// aborts its topology change, so the old ring never routes to it,
    /// and the next successful migration's restore replaces it.
    fn move_stream(
        &self,
        stream: StreamId,
        from: usize,
        from_addr: SocketAddr,
        to: usize,
        to_addr: SocketAddr,
    ) -> Result<(), ClusterError> {
        // One trace per migration, id derived from the stream id
        // (pure: a test can predict it), all three phases — across two
        // different workers — under one root span. Always on:
        // migrations are reconfiguration-rate.
        let ctx = TraceContext::for_migration(stream);
        self.last_trace.store(ctx.trace_id, Ordering::Relaxed);
        let _scope = self.obs.trace_scope(ctx);
        let root = self.obs.span("cluster.migrate");
        let hop = Some(ctx.child(root.id()));
        let body = format!("{{\"stream\":{stream}}}");
        let out = self.exchange_at_traced(
            from,
            from_addr,
            "POST",
            "/migrate/snapshot",
            body.as_bytes(),
            hop,
        )?;
        let text = std::str::from_utf8(&out).unwrap_or("");
        let snapshot = JsonParser::new(text.trim())
            .object()
            .and_then(|f| f.str_field("snapshot").map(str::to_string))
            .map_err(|what| ClusterError::BadResponse {
                worker: from,
                what: format!("migrate/snapshot: {what}"),
            })?;
        let in_body = format!("{{\"stream\":{stream},\"snapshot\":\"{snapshot}\"}}");
        self.exchange_at_traced(to, to_addr, "POST", "/migrate/in", in_body.as_bytes(), hop)?;
        self.exchange_at_traced(
            from,
            from_addr,
            "POST",
            "/migrate/evict",
            body.as_bytes(),
            hop,
        )?;
        Ok(())
    }

    /// Migrate one stream to the worker at ring index `to`, regardless
    /// of ring ownership (an operator escape hatch; routed traffic
    /// still follows the ring, so only use this for ids the ring
    /// already sends to `to` — the rebalance entry points keep the two
    /// consistent).
    pub fn migrate_stream(&self, stream: StreamId, to: usize) -> Result<(), ClusterError> {
        let topology = self.write();
        if to >= topology.workers.len() {
            return Err(ClusterError::BadResponse {
                worker: to,
                what: "no such worker index".to_string(),
            });
        }
        let from = topology.ring.owner(stream);
        self.move_stream(
            stream,
            from,
            topology.workers[from],
            to,
            topology.workers[to],
        )
    }

    /// Scrape `/metrics` from every worker and federate them into one
    /// Prometheus exposition, each sample labeled `worker="<index>"`
    /// ([`hom_obs::federate`]). Sample values pass through as raw
    /// strings — the federated text is bit-exact per worker.
    pub fn metrics(&self) -> Result<String, ClusterError> {
        // Snapshot the worker list and drop the topology lock before
        // touching any socket: a slow worker must never hold the lock
        // (a queued write — swap/rebalance — would stall new `/submit`
        // readers behind it). Scrapes run in parallel, so a scrape of a
        // degraded fleet costs one timeout, not one per dead worker.
        let workers = self.workers();
        let results: Vec<Result<Vec<u8>, ClusterError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter()
                .enumerate()
                .map(|(w, &addr)| {
                    scope.spawn(move || self.exchange_at(w, addr, "GET", "/metrics", &[]))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scraper thread never panics"))
                .collect()
        });
        let mut scrapes = Vec::with_capacity(workers.len());
        for (w, result) in results.into_iter().enumerate() {
            let text = String::from_utf8(result?).map_err(|_| ClusterError::BadResponse {
                worker: w,
                what: "non-UTF-8 metrics".to_string(),
            })?;
            scrapes.push((w.to_string(), text));
        }
        hom_obs::federate(&scrapes, "worker").map_err(|e| ClusterError::BadResponse {
            worker: 0,
            what: format!("federation failed: {e}"),
        })
    }

    /// Per-worker health: `/healthz` scraped from every worker, with
    /// unreachable workers reported as rows (`healthy: false`) rather
    /// than errors — this is the observability path, it must render a
    /// degraded cluster, not fail on it.
    pub fn cluster_status(&self) -> Vec<WorkerStatus> {
        // As in [`Self::metrics`]: probe outside the topology lock and
        // in parallel, so k unreachable workers cost one timeout — and
        // never stall traffic behind a queued topology write.
        let workers = self.workers();
        // One trace per sweep (always on — probe-rate, not traffic-
        // rate): every worker's `cluster.healthz` span hangs under this
        // root, so a sweep's trace shows which worker was slow.
        let round = self.probe_seq.fetch_add(1, Ordering::Relaxed);
        let ctx = TraceContext::for_probe(round);
        let _scope = self.obs.trace_scope(ctx);
        let root = self.obs.span("cluster.probe");
        let header = ctx.child(root.id()).to_header();
        std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter()
                .enumerate()
                .map(|(w, &addr)| {
                    let header = header.as_str();
                    scope.spawn(move || {
                        let health = http_request_traced(
                            addr,
                            "GET",
                            "/healthz",
                            &[],
                            self.timeout,
                            Some(header),
                        )
                        .ok()
                        .filter(|(status, _)| *status == 200)
                        .and_then(|(_, body)| {
                            let text = String::from_utf8(body).ok()?;
                            let fields = JsonParser::new(text.trim()).object().ok()?;
                            Some((
                                fields.u64_field("epoch").ok()? as u32,
                                fields.u64_field("live").ok()?,
                                fields.u64_field("parked").ok()?,
                            ))
                        });
                        match health {
                            Some((epoch, live, parked)) => WorkerStatus {
                                worker: w,
                                addr,
                                healthy: true,
                                epoch,
                                live,
                                parked,
                            },
                            None => WorkerStatus {
                                worker: w,
                                addr,
                                healthy: false,
                                epoch: 0,
                                live: 0,
                                parked: 0,
                            },
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prober thread never panics"))
                .collect()
        })
    }

    /// The most recent trace id this router originated (0 = none yet).
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace.load(Ordering::Relaxed)
    }

    /// The router's own span slice of trace `id` (for callers that hold
    /// the `Router` in process rather than scraping [`RouterServer`]).
    pub fn traces(&self) -> &Arc<TraceBuffer> {
        &self.traces
    }

    /// Fetch trace `id` fleet-wide: the router's own span slice plus
    /// every worker's `/trace/<id>` slice, each line annotated with a
    /// `node` field (`"router"` / `"w<index>"`), concatenated into one
    /// JSONL document — the stitched cross-process span tree.
    ///
    /// Span ids are per-process counters, so consumers key spans by
    /// `(node, id)`; parent links cross nodes via the trace header's
    /// parent span id, which lives on the *sending* node. A worker that
    /// has no spans for `id` contributes nothing (its `/trace` endpoint
    /// answers 200 with an empty body — "no spans here" is an answer,
    /// not an error). An unreachable worker is an error, like
    /// [`Self::metrics`]: a stitched trace with silently missing nodes
    /// would read as "the worker did nothing", which is worse than no
    /// answer.
    pub fn trace(&self, id: u64) -> Result<String, ClusterError> {
        // As in metrics(): snapshot the workers, drop the lock, fetch
        // in parallel.
        let workers = self.workers();
        let path = format!("/trace/{id:016x}");
        let results: Vec<Result<Vec<u8>, ClusterError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .iter()
                .enumerate()
                .map(|(w, &addr)| {
                    let path = path.as_str();
                    scope.spawn(move || self.exchange_at(w, addr, "GET", path, &[]))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trace fetcher thread never panics"))
                .collect()
        });
        let mut out = annotate_node(&self.traces.slice_jsonl(id, DUMP_CAP), "router");
        for (w, result) in results.into_iter().enumerate() {
            let text = String::from_utf8(result?).map_err(|_| ClusterError::BadResponse {
                worker: w,
                what: "non-UTF-8 trace slice".to_string(),
            })?;
            out.push_str(&annotate_node(&text, &format!("w{w}")));
        }
        Ok(out)
    }
}

/// Stamp `,"node":"<node>"` into every JSONL event line (before the
/// closing brace) — how the federated trace records which process each
/// span came from. `hom_obs::jsonl::parse_line` tolerates unknown
/// fields, so annotated lines still parse; node names are fixed
/// identifiers (`router`, `w<index>`), never containing JSON-special
/// characters.
fn annotate_node(jsonl: &str, node: &str) -> String {
    let mut out = String::with_capacity(jsonl.len() + 24 * jsonl.lines().count());
    for line in jsonl.lines() {
        match line.strip_suffix('}') {
            Some(head) => {
                out.push_str(head);
                out.push_str(",\"node\":\"");
                out.push_str(node);
                out.push_str("\"}\n");
            }
            // Not an event object (defensive — never produced by
            // slice_jsonl): pass through untouched.
            None => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

fn parse_epoch(payload: &[u8]) -> Option<u32> {
    let text = std::str::from_utf8(payload).ok()?;
    let fields = JsonParser::new(text.trim()).object().ok()?;
    Some(fields.u64_field("epoch").ok()? as u32)
}

fn parse_streams(payload: &[u8]) -> Option<Vec<StreamId>> {
    let text = std::str::from_utf8(payload).ok()?;
    let fields = JsonParser::new(text.trim()).object().ok()?;
    // Exact-integer parse: ids ≥ 2^53 must not round through f64, or
    // the rebalancer would migrate (or 404 on) the wrong stream.
    fields.u64_array_field("streams").ok()
}

/// The router's own HTTP face — what clients and scrapers talk to.
///
/// | route | method | payload |
/// |---|---|---|
/// | `/submit` | POST | JSONL batch in, JSONL responses out (request order) |
/// | `/swap` | POST | raw `HOMM` blob → two-phase fleet flip → `{"epoch":N}` |
/// | `/metrics` | GET | federated Prometheus exposition, samples labeled `worker` |
/// | `/trace/<id>` | GET | the stitched cross-process span tree of trace `<id>` (fixed-width lowercase hex): the router's spans plus every worker's, JSONL, each line `node`-annotated ([`Router::trace`]) |
/// | `/cluster` | GET | JSON per-worker health/epoch/stream counts |
/// | `/healthz` | GET | router liveness + worker count |
pub struct RouterServer {
    server: HttpServer,
    router: Arc<Router>,
}

impl fmt::Debug for RouterServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouterServer")
            .field("addr", &self.server.addr())
            .finish()
    }
}

impl RouterServer {
    /// Serve `router` on `addr` (port 0 picks a free one).
    pub fn bind(addr: SocketAddr, router: Arc<Router>) -> std::io::Result<Self> {
        let handler_router = Arc::clone(&router);
        let server = HttpServer::bind(
            addr,
            "hom-router",
            Arc::new(move |req: &HttpRequest| route(&handler_router, req)),
        )?;
        Ok(RouterServer { server, router })
    }

    /// The address actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The router behind this listener.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }
}

fn route(router: &Router, req: &HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/submit") => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return HttpResponse::bad_request("submit body is not UTF-8");
            };
            let batch = match wire::decode_requests(text) {
                Ok(b) => b,
                Err(e) => return HttpResponse::bad_request(&e.to_string()),
            };
            match router.submit(&batch) {
                Ok(responses) => {
                    HttpResponse::ok("application/jsonl", wire::encode_responses(&responses))
                }
                Err(e) => bad_gateway(&e),
            }
        }
        ("POST", "/swap") => match router.swap(&req.body) {
            Ok(epoch) => HttpResponse::ok("application/json", format!("{{\"epoch\":{epoch}}}\n")),
            Err(e) => bad_gateway(&e),
        },
        ("GET", "/metrics") => match router.metrics() {
            Ok(text) => HttpResponse::ok("text/plain; version=0.0.4", text),
            Err(e) => bad_gateway(&e),
        },
        ("GET", "/cluster") => {
            let mut body = String::from("{\"workers\":[");
            for (i, s) in router.cluster_status().iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"worker\":{},\"addr\":\"{}\",\"healthy\":{},\"epoch\":{},\
                     \"live\":{},\"parked\":{}}}",
                    s.worker, s.addr, s.healthy, s.epoch, s.live, s.parked
                ));
            }
            body.push_str("]}\n");
            HttpResponse::ok("application/json", body)
        }
        ("GET", "/healthz") => HttpResponse::ok(
            "application/json",
            format!("{{\"workers\":{}}}\n", router.workers().len()),
        ),
        ("GET", path) if path.starts_with("/trace/") => {
            let hex = &path["/trace/".len()..];
            match u64::from_str_radix(hex, 16) {
                Ok(id) if id != 0 => match router.trace(id) {
                    Ok(body) => HttpResponse::ok("application/x-ndjson", body),
                    Err(e) => bad_gateway(&e),
                },
                _ => HttpResponse::bad_request("bad trace id"),
            }
        }
        _ => HttpResponse::not_found("unknown route"),
    }
}

fn bad_gateway(e: &ClusterError) -> HttpResponse {
    HttpResponse {
        status: "502 Bad Gateway",
        content_type: "text/plain",
        body: format!("{e}\n").into_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_parse_keeps_large_stream_ids_exact() {
        // u64::MAX exceeds f64's exact range: a rounded census id would
        // make the rebalancer migrate (or 404 on) the wrong stream.
        let body = format!("{{\"epoch\":3,\"streams\":[1,{}]}}\n", u64::MAX);
        assert_eq!(parse_streams(body.as_bytes()), Some(vec![1, u64::MAX]));
        // Fractional or u64-overflowing ids fail the parse outright —
        // a typed rebalance error, never a silently wrong id.
        assert_eq!(parse_streams(b"{\"streams\":[1.5]}"), None);
        assert_eq!(parse_streams(b"{\"streams\":[99999999999999999999]}"), None);
    }
}
