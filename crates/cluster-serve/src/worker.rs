//! The worker node: one [`ServeEngine`] behind the cluster protocol.
//!
//! A worker is deliberately dumb — it owns no topology, knows no peers,
//! and never initiates anything. The router tells it what to serve
//! (`/submit`), which streams to hand over or adopt
//! (`/migrate/snapshot`, `/migrate/in`, `/migrate/evict`), and when to
//! stage and flip a new model (`/swap/prepare`, `/swap/commit`).
//! Everything stateful lives in the
//! engine; killing a worker loses exactly what killing a single-node
//! [`ServeEngine`] loses (nothing, with a durable store under it — see
//! `hom-store`).
//!
//! | route | method | payload |
//! |---|---|---|
//! | `/submit` | POST | JSONL request batch in, JSONL responses out, order preserved ([`crate::wire`]) |
//! | `/migrate/snapshot` | POST | `{"stream":N}` → `{"stream":N,"snapshot":"<hex>"}`; a **non-destructive** copy ([`ServeEngine::snapshot`]) — phase 1 of the router's two-phase migration |
//! | `/migrate/in` | POST | `{"stream":N,"snapshot":"<hex>"}` → installs the state ([`ServeEngine::restore`]; older-epoch snapshots migrate forward on arrival) — phase 2 |
//! | `/migrate/evict` | POST | `{"stream":N}` → removes every local trace of the stream ([`ServeEngine::extract`], bytes discarded) — phase 3, sent only after the target acks `/migrate/in` |
//! | `/migrate/out` | POST | `{"stream":N}` → `{"stream":N,"snapshot":"<hex>"}`; one-shot snapshot **and removal** ([`ServeEngine::extract`]) — an operator drain hatch, not used by the router's two-phase migration |
//! | `/swap/prepare` | POST | raw `HOMM` model blob (`hom_core::model_codec`) → decoded, validated and **staged**; `{"epoch":N}` echoes the blob's target epoch |
//! | `/swap/commit` | POST | `{"epoch":N}` → flips the staged model into the engine iff the target epoch matches; `{"epoch":N}` confirms |
//! | `/quiesce` | POST | parks every live stream and commits the durable store → `{"parked":N}` |
//! | `/healthz` | GET | JSON liveness: epoch, live/parked stream counts |
//! | `/metrics` | GET | Prometheus text from the engine's [`ServeTelemetry`] aggregates — the router federates these |
//! | `/cluster/info` | GET | JSON epoch + full stream-id census ([`ServeEngine::stream_ids`]) — the rebalancer's input |
//! | `/posterior/<id>` | GET | the stream's posterior, shortest round-trip floats (bit-exact scrape) |
//! | `/trace/<id>` | GET | this worker's span slice of distributed trace `<id>` (fixed-width lowercase hex) as JSONL; unknown ids answer 200 with an empty body — the router federates these into the stitched tree |
//!
//! Every route the router forwards carries an optional `X-HOM-Trace`
//! header ([`crate::http::TRACE_HEADER`]); when present and
//! well-formed, the worker's handler spans — `cluster.submit` (with
//! `cluster.decode`/`serve.batch`/`cluster.encode` under it), the
//! `cluster.migrate_*` phases, `cluster.swap_*`, `cluster.healthz` —
//! join the router's trace as children of the router's forwarding span.
//!
//! The two-phase swap is what makes a cluster-wide model flip atomic:
//! `prepare` distributes and validates the blob on every worker while
//! traffic still flows against the old model; `commit` is then a tiny,
//! deterministic step (the model is already decoded and resident), so
//! the router can flip the whole fleet inside one routing write-lock
//! hold — no worker ever serves a request against a different epoch
//! than its peers (see `crate::router`).

use std::fmt;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use hom_core::{decode_model, HighOrderModel};
use hom_obs::export::to_prometheus;
use hom_obs::jsonl::push_f64;
use hom_obs::trace::DUMP_CAP;
use hom_obs::TraceContext;
use hom_serve::{ServeEngine, ServeTelemetry, StreamId};

use crate::http::{HttpRequest, HttpResponse, HttpServer};
use crate::wire::{self, JsonParser};

/// A worker's engine plus the HTTP listener speaking the cluster
/// protocol over it. Dropping the server stops the listener; the engine
/// (shared `Arc`) lives on.
pub struct WorkerServer {
    server: HttpServer,
    engine: Arc<ServeEngine>,
}

impl fmt::Debug for WorkerServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerServer")
            .field("addr", &self.server.addr())
            .finish()
    }
}

/// The model staged by `/swap/prepare`, waiting for its `/swap/commit`.
struct Staged {
    model: Arc<HighOrderModel>,
    epoch: u32,
}

impl WorkerServer {
    /// Bind the cluster protocol on `addr` (port 0 picks a free one —
    /// read it back with [`Self::addr`]) over `engine`. `telemetry` must
    /// be the bundle the engine's `ServeOptions::sink` records into, or
    /// `/metrics` will scrape an empty aggregate.
    pub fn bind(
        addr: SocketAddr,
        engine: Arc<ServeEngine>,
        telemetry: Arc<ServeTelemetry>,
    ) -> std::io::Result<Self> {
        let handler_engine = Arc::clone(&engine);
        let staged: Arc<Mutex<Option<Staged>>> = Arc::new(Mutex::new(None));
        let server = HttpServer::bind(
            addr,
            "hom-worker",
            Arc::new(move |req: &HttpRequest| dispatch(&handler_engine, &telemetry, &staged, req)),
        )?;
        Ok(WorkerServer { server, engine })
    }

    /// The address actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The engine this worker serves.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }
}

fn dispatch(
    engine: &Arc<ServeEngine>,
    telemetry: &Arc<ServeTelemetry>,
    staged: &Mutex<Option<Staged>>,
    req: &HttpRequest,
) -> HttpResponse {
    // An inbound `X-HOM-Trace` header joins this request to the
    // router's trace: the scope installs the remote parent span id, so
    // every span opened while handling the request — including the
    // engine's own `serve.batch` (same `Obs` handle via `telemetry`) —
    // lands in the worker's trace buffer under the router's span.
    // Malformed or absent headers mean "untraced": no scope, no spans,
    // zero deviation from the untraced path.
    let ctx = req.trace.as_deref().and_then(TraceContext::parse);
    let obs = telemetry.obs();
    let _scope = ctx.map(|c| obs.trace_scope(c));
    let traced = ctx.is_some();
    let span = |name| traced.then(|| obs.span(name));
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/submit") => {
            let _s = span("cluster.submit");
            submit(engine, &req.body, traced, &obs)
        }
        ("POST", "/migrate/snapshot") => {
            let _s = span("cluster.migrate_snapshot");
            migrate_snapshot(engine, &req.body)
        }
        ("POST", "/migrate/out") => migrate_out(engine, &req.body),
        ("POST", "/migrate/in") => {
            let _s = span("cluster.migrate_in");
            migrate_in(engine, &req.body)
        }
        ("POST", "/migrate/evict") => {
            let _s = span("cluster.migrate_evict");
            migrate_evict(engine, &req.body)
        }
        ("POST", "/swap/prepare") => {
            let _s = span("cluster.swap_prepare");
            swap_prepare(engine, staged, &req.body)
        }
        ("POST", "/swap/commit") => {
            let _s = span("cluster.swap_commit");
            swap_commit(engine, staged, &req.body)
        }
        ("POST", "/quiesce") => quiesce(engine),
        ("GET", "/healthz") => {
            let _s = span("cluster.healthz");
            healthz(engine)
        }
        ("GET", "/metrics") => {
            engine.flush_trace();
            HttpResponse::ok(
                "text/plain; version=0.0.4",
                to_prometheus(&telemetry.agg().snapshot()),
            )
        }
        ("GET", "/cluster/info") => cluster_info(engine),
        ("GET", path) if path.starts_with("/posterior/") => {
            posterior(engine, &path["/posterior/".len()..])
        }
        ("GET", path) if path.starts_with("/trace/") => {
            trace_slice(telemetry, &path["/trace/".len()..])
        }
        _ => HttpResponse::not_found("unknown route"),
    }
}

/// This worker's span slice of one distributed trace, as JSONL. An
/// unknown id is a **200 with an empty body** — "no spans here" is a
/// valid answer the router's federation must be able to aggregate, not
/// an error that would fail the whole stitched fetch.
fn trace_slice(telemetry: &ServeTelemetry, hex: &str) -> HttpResponse {
    match u64::from_str_radix(hex, 16) {
        Ok(id) if id != 0 => HttpResponse::ok(
            "application/x-ndjson",
            telemetry.traces().slice_jsonl(id, DUMP_CAP),
        ),
        _ => HttpResponse::bad_request("bad trace id"),
    }
}

fn submit(engine: &ServeEngine, body: &[u8], traced: bool, obs: &hom_obs::Obs) -> HttpResponse {
    let decoded = {
        let _s = traced.then(|| obs.span("cluster.decode"));
        std::str::from_utf8(body)
            .map_err(|_| "submit body is not UTF-8".to_string())
            .and_then(|text| wire::decode_requests(text).map_err(|e| e.to_string()))
    };
    let batch = match decoded {
        Ok(batch) => batch,
        Err(e) => return HttpResponse::bad_request(&e),
    };
    // `engine.submit` opens its own `serve.batch` span under the active
    // trace (the engine records into the same `Obs`), so the trace
    // shows decode / batch / encode as siblings under `cluster.submit`.
    let responses = engine.submit(&batch);
    let _s = traced.then(|| obs.span("cluster.encode"));
    HttpResponse::ok("application/jsonl", wire::encode_responses(&responses))
}

/// Parse a one-line JSON body like `{"stream":7,...}`.
fn body_fields(body: &[u8]) -> Result<crate::wire::JsonFields, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    JsonParser::new(text.trim()).object()
}

/// Phase 1 of the router's two-phase migration: a **non-destructive**
/// snapshot. This worker keeps serving the stream — and keeps its
/// durable-store copy — until the router confirms the target installed
/// it and sends `/migrate/evict`, so a failure anywhere in between
/// loses nothing.
fn migrate_snapshot(engine: &ServeEngine, body: &[u8]) -> HttpResponse {
    let stream = match body_fields(body).and_then(|f| f.u64_field("stream")) {
        Ok(s) => s,
        Err(what) => return HttpResponse::bad_request(what),
    };
    match engine.snapshot(stream) {
        Some(bytes) => HttpResponse::ok(
            "application/json",
            format!(
                "{{\"stream\":{stream},\"snapshot\":\"{}\"}}\n",
                wire::to_hex(&bytes)
            ),
        ),
        None => HttpResponse::not_found("stream not on this worker"),
    }
}

/// Phase 3 of the two-phase migration: drop the source copy — live
/// slot, RAM-parked bytes, durable-store tombstone — now that the
/// target owns the stream. The extracted bytes are discarded; the
/// authoritative copy already lives on the target.
fn migrate_evict(engine: &ServeEngine, body: &[u8]) -> HttpResponse {
    let stream = match body_fields(body).and_then(|f| f.u64_field("stream")) {
        Ok(s) => s,
        Err(what) => return HttpResponse::bad_request(what),
    };
    match engine.extract(stream) {
        Some(_) => HttpResponse::ok("application/json", format!("{{\"stream\":{stream}}}\n")),
        None => HttpResponse::not_found("stream not on this worker"),
    }
}

fn migrate_out(engine: &ServeEngine, body: &[u8]) -> HttpResponse {
    let stream = match body_fields(body).and_then(|f| f.u64_field("stream")) {
        Ok(s) => s,
        Err(what) => return HttpResponse::bad_request(what),
    };
    match engine.extract(stream) {
        Some(bytes) => HttpResponse::ok(
            "application/json",
            format!(
                "{{\"stream\":{stream},\"snapshot\":\"{}\"}}\n",
                wire::to_hex(&bytes)
            ),
        ),
        None => HttpResponse::not_found("stream not on this worker"),
    }
}

fn migrate_in(engine: &ServeEngine, body: &[u8]) -> HttpResponse {
    let fields = match body_fields(body) {
        Ok(f) => f,
        Err(what) => return HttpResponse::bad_request(what),
    };
    let (stream, hex) = match (fields.u64_field("stream"), fields.str_field("snapshot")) {
        (Ok(s), Ok(h)) => (s, h),
        (Err(what), _) | (_, Err(what)) => return HttpResponse::bad_request(what),
    };
    let bytes = match wire::from_hex(hex) {
        Ok(b) => b,
        Err(e) => return HttpResponse::bad_request(&e.to_string()),
    };
    match engine.restore(stream, &bytes) {
        Ok(()) => HttpResponse::ok("application/json", format!("{{\"stream\":{stream}}}\n")),
        Err(e) => HttpResponse::bad_request(&format!("snapshot rejected: {e}")),
    }
}

fn swap_prepare(engine: &ServeEngine, staged: &Mutex<Option<Staged>>, body: &[u8]) -> HttpResponse {
    let (model, epoch) = match decode_model(body) {
        Ok(decoded) => decoded,
        Err(e) => return HttpResponse::bad_request(&format!("model blob rejected: {e}")),
    };
    // Validate the flip *now*, not at commit time: a blob targeting the
    // wrong epoch (router and worker disagree on swap count) must fail
    // the prepare phase, while every worker still serves the old model.
    let expected = engine.epoch() + 1;
    if epoch != expected {
        return HttpResponse::bad_request(&format!(
            "blob targets epoch {epoch}, this worker's next epoch is {expected}"
        ));
    }
    *staged.lock().unwrap_or_else(|e| e.into_inner()) = Some(Staged { model, epoch });
    HttpResponse::ok("application/json", format!("{{\"epoch\":{epoch}}}\n"))
}

fn swap_commit(engine: &ServeEngine, staged: &Mutex<Option<Staged>>, body: &[u8]) -> HttpResponse {
    let epoch = match body_fields(body).and_then(|f| f.u64_field("epoch")) {
        Ok(e) => e as u32,
        Err(what) => return HttpResponse::bad_request(what),
    };
    let mut slot = staged.lock().unwrap_or_else(|e| e.into_inner());
    match slot.as_ref() {
        Some(s) if s.epoch == epoch => {}
        Some(s) => {
            return HttpResponse::bad_request(&format!(
                "staged model targets epoch {}, commit asked for {epoch}",
                s.epoch
            ))
        }
        None => return HttpResponse::bad_request("no staged model to commit"),
    }
    let model = Arc::clone(&slot.as_ref().expect("checked above").model);
    match engine.swap_model(model) {
        Ok(report) if report.epoch == epoch => {
            *slot = None;
            HttpResponse::ok("application/json", format!("{{\"epoch\":{epoch}}}\n"))
        }
        Ok(report) => {
            // The engine flipped but landed on an unexpected epoch — a
            // cluster invariant violation the router must see loudly.
            *slot = None;
            HttpResponse::bad_request(&format!(
                "swap landed on epoch {}, expected {epoch}",
                report.epoch
            ))
        }
        Err(e) => HttpResponse::bad_request(&format!("swap rejected: {e}")),
    }
}

fn quiesce(engine: &ServeEngine) -> HttpResponse {
    let mut parked = 0usize;
    for stream in engine.stream_ids() {
        if engine.park(stream) {
            parked += 1;
        }
    }
    if let Some(store) = engine.store() {
        if let Err(e) = store.commit() {
            return HttpResponse::bad_request(&format!("store commit failed: {e}"));
        }
    }
    HttpResponse::ok("application/json", format!("{{\"parked\":{parked}}}\n"))
}

fn healthz(engine: &ServeEngine) -> HttpResponse {
    HttpResponse::ok(
        "application/json",
        format!(
            "{{\"epoch\":{},\"live\":{},\"parked\":{}}}\n",
            engine.epoch(),
            engine.live_streams(),
            engine.parked_streams()
        ),
    )
}

fn cluster_info(engine: &ServeEngine) -> HttpResponse {
    let ids = engine.stream_ids();
    let mut body = format!("{{\"epoch\":{},\"streams\":[", engine.epoch());
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&id.to_string());
    }
    body.push_str("]}\n");
    HttpResponse::ok("application/json", body)
}

fn posterior(engine: &ServeEngine, id: &str) -> HttpResponse {
    let Ok(stream) = id.parse::<StreamId>() else {
        return HttpResponse::bad_request("stream id must be an integer");
    };
    match engine.posterior(stream) {
        Some(p) => {
            let mut body = format!("{{\"stream\":{stream},\"posterior\":[");
            for (i, &v) in p.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                push_f64(&mut body, v);
            }
            body.push_str("]}\n");
            HttpResponse::ok("application/json", body)
        }
        None => HttpResponse::not_found("no such stream"),
    }
}
