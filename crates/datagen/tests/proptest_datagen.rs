//! Property-based tests of the stream generators: schema validity and
//! ground-truth consistency hold for arbitrary parameter settings.

use hom_data::{StreamRecord, StreamSource};
use hom_datagen::{
    hyperplane::hyperplane_label, sea::sea_label, stagger::stagger_label, HyperplaneParams,
    HyperplaneSource, IntrusionParams, IntrusionSource, SeaParams, SeaSource, StaggerParams,
    StaggerSource,
};
use proptest::prelude::*;

fn check_valid(src: &mut dyn StreamSource, n: usize) -> Vec<StreamRecord> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let r = src.next_record();
        assert!(
            src.schema().validate_row(&r.x).is_ok(),
            "invalid row {:?}",
            r.x
        );
        assert!(src.schema().validate_label(r.y).is_ok());
        if let Some(k) = src.n_concepts() {
            assert!(r.concept < k);
        }
        out.push(r);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stagger: every record's label equals the active concept's rule.
    #[test]
    fn stagger_valid_for_any_params(
        lambda in 0.0f64..0.2,
        z in 0.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let mut s = StaggerSource::new(StaggerParams { lambda, zipf_z: z, period: None, seed });
        for r in check_valid(&mut s, 300) {
            prop_assert_eq!(r.y, stagger_label(r.concept, r.x[0], r.x[1], r.x[2]));
            prop_assert!(!r.drifting);
        }
    }

    /// Hyperplane: records stay in the unit cube; stable (non-drifting)
    /// records match their concept's hyperplane exactly.
    #[test]
    fn hyperplane_valid_for_any_params(
        lambda in 0.0f64..0.05,
        dims in 2usize..6,
        n_concepts in 2usize..6,
        drift_steps in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut s = HyperplaneSource::new(HyperplaneParams {
            dims,
            n_concepts,
            lambda,
            drift_steps,
            zipf_z: 1.0,
            period: None,
            seed,
        });
        let weights: Vec<Vec<f64>> =
            (0..n_concepts).map(|c| s.concept_weights(c).to_vec()).collect();
        for r in check_valid(&mut s, 300) {
            prop_assert!(r.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
            if !r.drifting {
                prop_assert_eq!(r.y, hyperplane_label(&weights[r.concept], &r.x));
            }
        }
    }

    /// SEA: noise-free labels match the active threshold rule.
    #[test]
    fn sea_valid_for_any_params(
        lambda in 0.0f64..0.1,
        seed in any::<u64>(),
    ) {
        let mut s = SeaSource::new(SeaParams {
            lambda,
            noise: 0.0,
            ..Default::default()
        });
        let _ = seed; // SEA content varies via its own seeds below
        let mut s2 = SeaSource::new(SeaParams { lambda, noise: 0.0, zipf_z: 1.0, period: None, seed });
        for r in check_valid(&mut s2, 300) {
            prop_assert_eq!(r.y, sea_label(r.concept, &r.x));
        }
        drop(s.next_record());
    }

    /// Intrusion: schema-valid for any regime count >= 2.
    #[test]
    fn intrusion_valid_for_any_params(
        n_regimes in 2usize..8,
        lambda in 0.0f64..0.02,
        seed in any::<u64>(),
    ) {
        let mut s = IntrusionSource::new(IntrusionParams {
            n_regimes,
            lambda,
            zipf_z: 1.0,
            seed,
        });
        check_valid(&mut s, 200);
    }

    /// Periodic schedules produce exactly the scripted segmentation for
    /// every generator that supports them.
    #[test]
    fn periodic_segmentation_is_exact(period in 5usize..200, seed in any::<u64>()) {
        let mut s = StaggerSource::new(StaggerParams {
            period: Some(period),
            seed,
            ..Default::default()
        });
        for i in 0..(3 * period) {
            let r = s.next_record();
            prop_assert_eq!(r.concept, (i / period) % 3, "record {}", i);
        }
    }
}
