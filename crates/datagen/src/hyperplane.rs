//! The Hyperplane concept-drifting stream (paper §IV-A).
//!
//! Records are uniform in `[0,1]^d`. A record is positive iff
//! `Σ aᵢ xᵢ ≥ a₀` with `a₀ = ½ Σ aᵢ`, so each concept's hyperplane halves
//! the volume. Each of the `n_concepts` concepts has its own random weight
//! vector. When the schedule switches concepts, the active weights glide
//! linearly from the current effective weights to the target's weights over
//! `drift_steps` records (paper default: 100), producing gradual drift
//! rather than an abrupt shift. Records generated mid-glide carry
//! `drifting = true` and are tagged with the *target* concept.

use std::sync::Arc;

use hom_data::rng::{derive_seed, seeded};
use hom_data::{Attribute, Schema, StreamRecord, StreamSource};
use rand::rngs::StdRng;
use rand::Rng;

use crate::schedule::SwitchSchedule;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct HyperplaneParams {
    /// Dimensionality (paper: 3 continuous attributes).
    pub dims: usize,
    /// Number of stable concepts (paper: 4).
    pub n_concepts: usize,
    /// Per-record concept-switch probability (paper default 0.001).
    pub lambda: f64,
    /// Zipf exponent of the transition law (paper default 1.0).
    pub zipf_z: f64,
    /// Records taken by one drift from concept to concept (paper: 100).
    pub drift_steps: usize,
    /// When set, overrides the random schedule with deterministic
    /// round-robin switching every `period` records (Figs. 5–6).
    pub period: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for HyperplaneParams {
    fn default() -> Self {
        HyperplaneParams {
            dims: 3,
            n_concepts: 4,
            lambda: 0.001,
            zipf_z: 1.0,
            drift_steps: 100,
            period: None,
            seed: 0,
        }
    }
}

/// The Hyperplane stream source.
pub struct HyperplaneSource {
    schema: Arc<Schema>,
    schedule: SwitchSchedule,
    rng: StdRng,
    /// Per-concept weight vectors.
    concept_weights: Vec<Vec<f64>>,
    /// Weights currently generating labels (equal to a concept's weights
    /// when stable, an interpolation while drifting).
    active: Vec<f64>,
    /// Drift state: (start weights, target concept, step, total steps).
    drift: Option<DriftState>,
    drift_steps: usize,
}

struct DriftState {
    from: Vec<f64>,
    target: usize,
    step: usize,
}

/// The d-dimensional hyperplane schema.
pub fn hyperplane_schema(dims: usize) -> Arc<Schema> {
    let attrs = (0..dims)
        .map(|i| Attribute::numeric(format!("x{i}")))
        .collect();
    Schema::new(attrs, ["negative", "positive"])
}

/// Label of `x` under weight vector `w` with `a₀ = ½ Σ wᵢ`.
pub fn hyperplane_label(w: &[f64], x: &[f64]) -> u32 {
    let a0 = 0.5 * w.iter().sum::<f64>();
    let s: f64 = w.iter().zip(x).map(|(a, b)| a * b).sum();
    u32::from(s >= a0)
}

impl HyperplaneSource {
    /// Build a source from parameters.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `drift_steps == 0`.
    pub fn new(params: HyperplaneParams) -> Self {
        assert!(params.dims > 0, "need at least one dimension");
        assert!(params.drift_steps > 0, "drift must take at least one step");
        let mut weight_rng = seeded(derive_seed(params.seed, 0));
        let concept_weights: Vec<Vec<f64>> = (0..params.n_concepts)
            .map(|_| (0..params.dims).map(|_| weight_rng.gen::<f64>()).collect())
            .collect();
        let active = concept_weights[0].clone();
        let schedule = match params.period {
            Some(p) => SwitchSchedule::periodic(params.n_concepts, p, derive_seed(params.seed, 1)),
            None => SwitchSchedule::new(
                params.n_concepts,
                params.lambda,
                params.zipf_z,
                derive_seed(params.seed, 1),
            ),
        };
        HyperplaneSource {
            schema: hyperplane_schema(params.dims),
            schedule,
            rng: seeded(derive_seed(params.seed, 2)),
            concept_weights,
            active,
            drift: None,
            drift_steps: params.drift_steps,
        }
    }

    /// The stable weight vector of concept `c` (for tests and ablations).
    pub fn concept_weights(&self, c: usize) -> &[f64] {
        &self.concept_weights[c]
    }
}

impl StreamSource for HyperplaneSource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_record(&mut self) -> StreamRecord {
        let (concept, switched) = self.schedule.tick();
        if switched {
            // Begin a glide from wherever we currently are (possibly
            // mid-drift) toward the new concept's hyperplane.
            self.drift = Some(DriftState {
                from: self.active.clone(),
                target: concept,
                step: 0,
            });
        }

        let mut drifting = false;
        if let Some(d) = &mut self.drift {
            d.step += 1;
            let t = d.step as f64 / self.drift_steps as f64;
            let target_w = &self.concept_weights[d.target];
            for (a, (f, g)) in self
                .active
                .iter_mut()
                .zip(d.from.iter().zip(target_w.iter()))
            {
                *a = f + (g - f) * t;
            }
            if d.step >= self.drift_steps {
                self.drift = None;
            } else {
                drifting = true;
            }
        }

        let x: Box<[f64]> = (0..self.active.len())
            .map(|_| self.rng.gen::<f64>())
            .collect();
        let y = hyperplane_label(&self.active, &x);
        StreamRecord {
            x,
            y,
            concept,
            drifting,
        }
    }

    fn n_concepts(&self) -> Option<usize> {
        Some(self.concept_weights.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_splits_volume_roughly_in_half() {
        let mut s = HyperplaneSource::new(HyperplaneParams {
            lambda: 0.0,
            ..Default::default()
        });
        let pos = (0..20_000).filter(|_| s.next_record().y == 1).count() as f64 / 20_000.0;
        assert!((pos - 0.5).abs() < 0.05, "positive fraction = {pos}");
    }

    #[test]
    fn stable_stream_is_consistent_with_concept_weights() {
        let mut s = HyperplaneSource::new(HyperplaneParams {
            lambda: 0.0,
            ..Default::default()
        });
        let w = s.concept_weights(0).to_vec();
        for _ in 0..200 {
            let r = s.next_record();
            assert_eq!(r.y, hyperplane_label(&w, &r.x));
            assert_eq!(r.concept, 0);
            assert!(!r.drifting);
        }
    }

    #[test]
    fn drift_lasts_drift_steps_records() {
        let mut s = HyperplaneSource::new(HyperplaneParams {
            lambda: 1.0, // force a switch on the first record
            drift_steps: 50,
            ..Default::default()
        });
        // First record starts (and is part of) a drift.
        let first = s.next_record();
        assert!(first.drifting);
        // Force no further switches by hacking lambda = 0 is not possible
        // post-construction; instead verify that a drifting flag appears
        // for at most drift_steps consecutive records in a λ=1 stream
        // (every record re-triggers, so all records are drifting).
        for _ in 0..10 {
            assert!(s.next_record().drifting);
        }
    }

    #[test]
    fn drift_completes_then_becomes_stable() {
        let mut s = HyperplaneSource::new(HyperplaneParams {
            lambda: 0.0,
            drift_steps: 10,
            ..Default::default()
        });
        // Manually inject a drift to concept 1.
        s.drift = Some(DriftState {
            from: s.concept_weights(0).to_vec(),
            target: 1,
            step: 0,
        });
        let mut drifting_count = 0;
        for _ in 0..20 {
            if s.next_record().drifting {
                drifting_count += 1;
            }
        }
        assert_eq!(drifting_count, 9); // steps 1..9 drift, step 10 completes
        let w1 = s.concept_weights(1).to_vec();
        assert_eq!(s.active, w1);
    }

    #[test]
    fn concepts_have_distinct_hyperplanes() {
        let s = HyperplaneSource::new(HyperplaneParams::default());
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert_ne!(s.concept_weights(a), s.concept_weights(b));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = HyperplaneSource::new(HyperplaneParams::default());
        let mut b = HyperplaneSource::new(HyperplaneParams::default());
        for _ in 0..300 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn attributes_stay_in_unit_cube() {
        let mut s = HyperplaneSource::new(HyperplaneParams::default());
        for _ in 0..500 {
            let r = s.next_record();
            assert!(r.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
