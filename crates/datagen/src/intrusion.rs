//! A synthetic sampling-change stream standing in for KDDCUP'99.
//!
//! The paper uses the KDDCUP'99 network-intrusion dataset as its
//! *sampling-change* benchmark: ~4.9M connection records, 34 continuous +
//! 7 discrete attributes, and a class distribution that changes in bursts
//! ("different periods witness bursts of different intrusion classes").
//! The original data cannot be shipped here, so this generator reproduces
//! its *shape* (see DESIGN.md):
//!
//! * identical attribute structure — 34 continuous, 7 discrete attributes;
//! * 5 traffic classes (normal + four attack families);
//! * a fixed set of stable **regimes**, each with its own dominant class
//!   and its own class-conditional attribute distributions (Gaussian for
//!   numeric attributes, multinomial for discrete ones);
//! * bursty regime occupancy driven by the shared [`SwitchSchedule`].
//!
//! Because both the class mixture *and* the class-conditional densities
//! change between regimes, a classifier trained in one regime degrades in
//! another — exactly the property the concept-clustering algorithm needs
//! in order to discover the regimes as distinct concepts.

use std::sync::Arc;

use hom_data::rng::{derive_seed, sample_discrete, seeded};
use hom_data::{Attribute, Schema, StreamRecord, StreamSource};
use rand::rngs::StdRng;
use rand::Rng;

use crate::schedule::SwitchSchedule;

/// Number of continuous attributes (matches KDDCUP'99).
pub const N_NUMERIC: usize = 34;
/// Cardinalities of the 7 discrete attributes (protocol, service, flag, …).
pub const CAT_CARDS: [usize; 7] = [3, 8, 5, 4, 3, 6, 2];
/// Traffic classes.
pub const CLASSES: [&str; 5] = ["normal", "dos", "probe", "r2l", "u2r"];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct IntrusionParams {
    /// Number of stable traffic regimes.
    pub n_regimes: usize,
    /// Per-record regime-switch probability (bursts of mean length 1/λ).
    pub lambda: f64,
    /// Zipf exponent of the regime transition law.
    pub zipf_z: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for IntrusionParams {
    fn default() -> Self {
        IntrusionParams {
            n_regimes: 5,
            lambda: 0.0005,
            zipf_z: 1.0,
            seed: 0,
        }
    }
}

/// Per-(regime, class) attribute distributions.
struct ClassProfile {
    /// Mean of each numeric attribute (std is fixed at 1).
    means: Vec<f64>,
    /// Multinomial weights per categorical attribute, concatenated.
    cat_weights: Vec<Vec<f64>>,
}

struct Regime {
    /// Class mixture of this regime.
    class_mix: Vec<f64>,
    profiles: Vec<ClassProfile>,
}

/// The synthetic intrusion stream source.
pub struct IntrusionSource {
    schema: Arc<Schema>,
    schedule: SwitchSchedule,
    rng: StdRng,
    regimes: Vec<Regime>,
}

/// The intrusion schema: 34 numeric + 7 categorical attributes, 5 classes.
pub fn intrusion_schema() -> Arc<Schema> {
    let mut attrs: Vec<Attribute> = (0..N_NUMERIC)
        .map(|i| Attribute::numeric(format!("num{i}")))
        .collect();
    for (a, &card) in CAT_CARDS.iter().enumerate() {
        attrs.push(Attribute::categorical(
            format!("cat{a}"),
            (0..card).map(|v| format!("v{v}")),
        ));
    }
    Schema::new(attrs, CLASSES)
}

impl IntrusionSource {
    /// Build a source from parameters.
    ///
    /// # Panics
    /// Panics if `n_regimes < 2` (the switch schedule needs two).
    pub fn new(params: IntrusionParams) -> Self {
        let mut setup = seeded(derive_seed(params.seed, 0));
        let n_classes = CLASSES.len();
        let regimes: Vec<Regime> = (0..params.n_regimes)
            .map(|r| {
                // Each regime is dominated by one class — bursts of one
                // traffic type — with the rest sharing the remainder.
                let dominant = r % n_classes;
                let mut class_mix = vec![0.15 / (n_classes - 1) as f64; n_classes];
                class_mix[dominant] = 0.85;
                let profiles = (0..n_classes)
                    .map(|_| ClassProfile {
                        means: (0..N_NUMERIC).map(|_| setup.gen::<f64>() * 6.0).collect(),
                        cat_weights: CAT_CARDS
                            .iter()
                            .map(|&card| {
                                // Random multinomial via exponential draws
                                // (a symmetric Dirichlet(1) sample).
                                let w: Vec<f64> = (0..card)
                                    .map(|_| -(1.0 - setup.gen::<f64>()).ln())
                                    .collect();
                                let s: f64 = w.iter().sum();
                                w.into_iter().map(|x| x / s).collect()
                            })
                            .collect(),
                    })
                    .collect();
                Regime {
                    class_mix,
                    profiles,
                }
            })
            .collect();

        IntrusionSource {
            schema: intrusion_schema(),
            schedule: SwitchSchedule::new(
                params.n_regimes,
                params.lambda,
                params.zipf_z,
                derive_seed(params.seed, 1),
            ),
            rng: seeded(derive_seed(params.seed, 2)),
            regimes,
        }
    }

    /// Number of regimes.
    pub fn n_regimes(&self) -> usize {
        self.regimes.len()
    }

    /// Standard normal sample (Box–Muller; one value per call).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.rng.gen::<f64>(); // in (0,1]
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl StreamSource for IntrusionSource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_record(&mut self) -> StreamRecord {
        let (regime_id, _) = self.schedule.tick();
        // Sample the class from the regime mixture, then the attributes
        // from the (regime, class) profile.
        let class = {
            let regime = &self.regimes[regime_id];
            sample_discrete(&regime.class_mix, &mut self.rng)
        };
        let mut x = Vec::with_capacity(N_NUMERIC + CAT_CARDS.len());
        for a in 0..N_NUMERIC {
            let mean = self.regimes[regime_id].profiles[class].means[a];
            x.push(mean + self.gauss());
        }
        for a in 0..CAT_CARDS.len() {
            let v = {
                let weights = &self.regimes[regime_id].profiles[class].cat_weights[a];
                sample_discrete(weights, &mut self.rng)
            };
            x.push(v as f64);
        }
        StreamRecord {
            x: x.into_boxed_slice(),
            y: class as u32,
            concept: regime_id,
            drifting: false,
        }
    }

    fn n_concepts(&self) -> Option<usize> {
        Some(self.regimes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_data::stream::collect;

    #[test]
    fn schema_matches_kdd_shape() {
        let s = intrusion_schema();
        assert_eq!(s.n_attrs(), 41);
        assert_eq!(s.n_classes(), 5);
        let n_cat = (0..41).filter(|&i| s.is_categorical(i)).count();
        assert_eq!(n_cat, 7);
    }

    #[test]
    fn records_are_schema_valid() {
        let mut src = IntrusionSource::new(IntrusionParams::default());
        for _ in 0..300 {
            let r = src.next_record();
            assert!(src.schema().validate_row(&r.x).is_ok());
            assert!(src.schema().validate_label(r.y).is_ok());
            assert!(r.concept < src.n_regimes());
        }
    }

    #[test]
    fn regimes_have_distinct_dominant_classes() {
        let mut src = IntrusionSource::new(IntrusionParams {
            lambda: 0.0,
            ..Default::default()
        });
        // With lambda 0 we stay in regime 0 whose dominant class is 0.
        let (data, concepts) = collect(&mut src, 2000);
        assert!(concepts.iter().all(|&c| c == 0));
        let counts = data.class_counts();
        let frac = counts[0] as f64 / 2000.0;
        assert!((frac - 0.85).abs() < 0.05, "dominant fraction = {frac}");
    }

    #[test]
    fn bursts_switch_regimes() {
        let mut src = IntrusionSource::new(IntrusionParams {
            lambda: 0.01,
            ..Default::default()
        });
        let (_, concepts) = collect(&mut src, 20_000);
        let distinct: std::collections::HashSet<_> = concepts.iter().collect();
        assert!(distinct.len() >= 4, "saw {} regimes", distinct.len());
    }

    #[test]
    fn within_regime_data_is_learnable_across_regimes_it_is_not() {
        use hom_classifiers::validate::evaluate;
        use hom_classifiers::{DecisionTreeLearner, Learner};

        // Train a tree on a pure regime-0 sample …
        let mut src0 = IntrusionSource::new(IntrusionParams {
            lambda: 0.0,
            ..Default::default()
        });
        let (train0, _) = collect(&mut src0, 1500);
        let (test0, _) = collect(&mut src0, 1500);
        let model = DecisionTreeLearner::new().fit(&train0);
        let err_same = evaluate(model.as_ref(), &test0);
        assert!(err_same < 0.12, "within-regime error = {err_same}");

        // … and evaluate it on a different regime: the switch schedule is
        // seeded, so pick a seed whose first regime differs in profile by
        // sampling from a source with a different master seed, which draws
        // completely different regime profiles.
        let mut src_other = IntrusionSource::new(IntrusionParams {
            lambda: 0.0,
            seed: 99,
            ..Default::default()
        });
        let (test_other, _) = collect(&mut src_other, 1500);
        let err_cross = evaluate(model.as_ref(), &test_other);
        assert!(
            err_cross > err_same + 0.1,
            "cross-regime error {err_cross} should exceed within-regime {err_same}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = IntrusionSource::new(IntrusionParams::default());
        let mut b = IntrusionSource::new(IntrusionParams::default());
        for _ in 0..100 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }
}
