//! The SEA concepts stream (Street & Kim, KDD'01 — the paper's reference \[2\]).
//!
//! Not part of the paper's evaluation, but the classic abrupt-shift
//! benchmark from the literature it builds on, included as an extension:
//! records have three numeric attributes uniform in `[0, 10]`, of which
//! only the first two are relevant; a record is positive iff
//! `x₀ + x₁ ≤ θ`, with one threshold θ per concept (8.0, 9.0, 7.0, 9.5 in
//! the original paper). Optional class noise flips each label with a
//! fixed probability (10% in the original).

use std::sync::Arc;

use hom_data::rng::{derive_seed, seeded};
use hom_data::{Attribute, Schema, StreamRecord, StreamSource};
use rand::rngs::StdRng;
use rand::Rng;

use crate::schedule::SwitchSchedule;

/// The four classic SEA thresholds.
pub const THRESHOLDS: [f64; 4] = [8.0, 9.0, 7.0, 9.5];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SeaParams {
    /// Per-record concept-switch probability.
    pub lambda: f64,
    /// Zipf exponent of the transition law.
    pub zipf_z: f64,
    /// Probability of flipping each label (original paper: 0.10).
    pub noise: f64,
    /// When set, deterministic round-robin switching every `period`
    /// records.
    pub period: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for SeaParams {
    fn default() -> Self {
        SeaParams {
            lambda: 0.001,
            zipf_z: 1.0,
            noise: 0.0,
            period: None,
            seed: 0,
        }
    }
}

/// The SEA stream source.
pub struct SeaSource {
    schema: Arc<Schema>,
    schedule: SwitchSchedule,
    rng: StdRng,
    noise: f64,
}

/// The SEA schema: three numeric attributes, binary class.
pub fn sea_schema() -> Arc<Schema> {
    Schema::new(
        vec![
            Attribute::numeric("x0"),
            Attribute::numeric("x1"),
            Attribute::numeric("x2"),
        ],
        ["negative", "positive"],
    )
}

/// Noise-free label of `x` under concept `concept`.
pub fn sea_label(concept: usize, x: &[f64]) -> u32 {
    u32::from(x[0] + x[1] <= THRESHOLDS[concept])
}

impl SeaSource {
    /// Build a source from parameters.
    ///
    /// # Panics
    /// Panics if `noise` is outside `[0, 1]`.
    pub fn new(params: SeaParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.noise),
            "noise must be a probability"
        );
        let schedule = match params.period {
            Some(p) => SwitchSchedule::periodic(THRESHOLDS.len(), p, derive_seed(params.seed, 0)),
            None => SwitchSchedule::new(
                THRESHOLDS.len(),
                params.lambda,
                params.zipf_z,
                derive_seed(params.seed, 0),
            ),
        };
        SeaSource {
            schema: sea_schema(),
            schedule,
            rng: seeded(derive_seed(params.seed, 1)),
            noise: params.noise,
        }
    }
}

impl StreamSource for SeaSource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_record(&mut self) -> StreamRecord {
        let (concept, _) = self.schedule.tick();
        let x: Box<[f64]> = (0..3).map(|_| self.rng.gen::<f64>() * 10.0).collect();
        let mut y = sea_label(concept, &x);
        if self.noise > 0.0 && self.rng.gen::<f64>() < self.noise {
            y = 1 - y;
        }
        StreamRecord {
            x,
            y,
            concept,
            drifting: false,
        }
    }

    fn n_concepts(&self) -> Option<usize> {
        Some(THRESHOLDS.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_data::stream::collect;

    #[test]
    fn labels_follow_thresholds() {
        assert_eq!(sea_label(0, &[4.0, 3.9, 0.0]), 1); // 7.9 <= 8.0
        assert_eq!(sea_label(0, &[4.0, 4.1, 0.0]), 0);
        assert_eq!(sea_label(2, &[4.0, 3.1, 9.0]), 0); // 7.1 > 7.0
        assert_eq!(sea_label(3, &[4.0, 5.4, 0.0]), 1); // 9.4 <= 9.5
    }

    #[test]
    fn noise_free_stream_is_consistent() {
        let mut s = SeaSource::new(SeaParams {
            lambda: 0.0,
            ..Default::default()
        });
        for _ in 0..500 {
            let r = s.next_record();
            assert_eq!(r.y, sea_label(0, &r.x));
            assert!(r.x.iter().all(|&v| (0.0..=10.0).contains(&v)));
        }
    }

    #[test]
    fn noise_flips_labels_at_the_configured_rate() {
        let mut s = SeaSource::new(SeaParams {
            lambda: 0.0,
            noise: 0.2,
            ..Default::default()
        });
        let flips = (0..10_000)
            .filter(|_| {
                let r = s.next_record();
                r.y != sea_label(0, &r.x)
            })
            .count();
        let rate = flips as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "flip rate = {rate}");
    }

    #[test]
    fn periodic_mode_cycles_concepts() {
        let mut s = SeaSource::new(SeaParams {
            period: Some(100),
            ..Default::default()
        });
        let (_, concepts) = collect(&mut s, 450);
        assert!(concepts[..100].iter().all(|&c| c == 0));
        assert!(concepts[100..200].iter().all(|&c| c == 1));
        assert!(concepts[400..].iter().all(|&c| c == 0));
    }

    #[test]
    fn high_order_model_learns_sea() {
        use hom_classifiers::DecisionTreeLearner;
        // Full-pipeline smoke test on SEA (extension workload).
        let mut s = SeaSource::new(SeaParams {
            lambda: 0.005,
            ..Default::default()
        });
        let (data, _) = collect(&mut s, 6_000);
        let learner = DecisionTreeLearner::new();
        // Only verify the clustering preconditions here; the end-to-end
        // accuracy check lives in the workspace integration tests (this
        // crate cannot depend on hom-core).
        let trained = hom_classifiers::Learner::fit(&learner, &data);
        let mut agree = 0;
        for _ in 0..500 {
            let r = s.next_record();
            if trained.predict(&r.x) == r.y {
                agree += 1;
            }
        }
        assert!(agree > 300, "tree should beat chance on SEA: {agree}/500");
    }
}
