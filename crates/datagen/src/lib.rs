//! Benchmark stream generators (paper §IV-A).
//!
//! Three streams, covering the paper's three change regimes:
//!
//! * [`stagger`] — **concept shift**: three symbolic attributes, three
//!   boolean target concepts A/B/C that switch abruptly.
//! * [`hyperplane`] — **concept drift**: a moving hyperplane in `[0,1]^d`;
//!   on each switch the hyperplane glides to the next concept's hyperplane
//!   over ~100 records.
//! * [`intrusion`] — **sampling change**: a synthetic stand-in for the
//!   KDDCUP'99 network-intrusion stream (34 continuous + 7 discrete
//!   attributes, 5 traffic classes) whose class mixture and class-
//!   conditional distributions change in bursts between stable regimes.
//!   See DESIGN.md for why this substitution preserves the experiment.
//!
//! All three share the [`schedule::SwitchSchedule`]: before each record the
//! current concept switches with probability λ (default 0.001), and the
//! next concept is drawn from a Zipf(z) law over the other concepts
//! (default z = 1), exactly the paper's default configuration.

pub mod hyperplane;
pub mod intrusion;
pub mod schedule;
pub mod sea;
pub mod stagger;

pub use hyperplane::{HyperplaneParams, HyperplaneSource};
pub use intrusion::{IntrusionParams, IntrusionSource};
pub use schedule::SwitchSchedule;
pub use sea::{SeaParams, SeaSource};
pub use stagger::{StaggerParams, StaggerSource};
