//! The concept-switch process shared by all generators.

use hom_data::rng::{sample_discrete, seeded, zipf_weights};
use rand::rngs::StdRng;
use rand::Rng;

/// Drives *when* the active concept changes and *which* concept comes next.
///
/// Matches the paper's generator configuration (§IV-A): "there is a
/// probability λ to change the current concept before generating each
/// record" and "the transition among concepts is controlled by the z
/// parameter of Zipf distribution".
#[derive(Debug, Clone)]
pub struct SwitchSchedule {
    zipf: Vec<f64>,
    mode: Mode,
    current: usize,
    rng: StdRng,
    /// Records generated since the last switch.
    run_length: u64,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Paper default: switch with probability λ before each record, next
    /// concept Zipf-distributed.
    Random { lambda: f64 },
    /// Deterministic round-robin switching every `period` records — used
    /// by the change-point-aligned experiments (Figs. 5–6), where the
    /// switch time must be known exactly.
    Periodic { period: u64 },
}

impl SwitchSchedule {
    /// A schedule over `n_concepts` concepts with per-record switch
    /// probability `lambda` and Zipf exponent `z`.
    ///
    /// # Panics
    /// Panics unless `n_concepts >= 2` and `0 <= lambda <= 1`.
    pub fn new(n_concepts: usize, lambda: f64, z: f64, seed: u64) -> Self {
        assert!(n_concepts >= 2, "need at least two concepts to switch");
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        SwitchSchedule {
            zipf: zipf_weights(n_concepts, z),
            mode: Mode::Random { lambda },
            current: 0,
            rng: seeded(seed),
            run_length: 0,
        }
    }

    /// A deterministic schedule that cycles concepts round-robin
    /// (0, 1, …, N−1, 0, …), switching every `period` records. Record
    /// indices `k·period` (k ≥ 1) are the first records of new segments.
    ///
    /// # Panics
    /// Panics unless `n_concepts >= 2` and `period >= 1`.
    pub fn periodic(n_concepts: usize, period: usize, seed: u64) -> Self {
        assert!(n_concepts >= 2, "need at least two concepts to switch");
        assert!(period >= 1, "period must be positive");
        SwitchSchedule {
            zipf: zipf_weights(n_concepts, 1.0),
            mode: Mode::Periodic {
                period: period as u64,
            },
            current: 0,
            rng: seeded(seed),
            run_length: 0,
        }
    }

    /// Number of concepts.
    pub fn n_concepts(&self) -> usize {
        self.zipf.len()
    }

    /// The concept active right now (before the next [`Self::tick`]).
    pub fn current(&self) -> usize {
        self.current
    }

    /// Advance one record: possibly switch, then return
    /// `(active_concept, switched_this_tick)`.
    pub fn tick(&mut self) -> (usize, bool) {
        let mut switched = false;
        match self.mode {
            Mode::Random { lambda } => {
                if self.rng.gen::<f64>() < lambda {
                    // Draw the next concept from the Zipf law restricted
                    // to the other concepts.
                    let mut w = self.zipf.clone();
                    w[self.current] = 0.0;
                    self.current = sample_discrete(&w, &mut self.rng);
                    self.run_length = 0;
                    switched = true;
                }
            }
            Mode::Periodic { period } => {
                if self.run_length >= period {
                    self.current = (self.current + 1) % self.zipf.len();
                    self.run_length = 0;
                    switched = true;
                }
            }
        }
        self.run_length += 1;
        (self.current, switched)
    }

    /// Expected concept run length: `1/λ` for random schedules (∞ when
    /// λ = 0), the period for periodic ones.
    pub fn expected_run_length(&self) -> f64 {
        match self.mode {
            Mode::Random { lambda: 0.0 } => f64::INFINITY,
            Mode::Random { lambda } => 1.0 / lambda,
            Mode::Periodic { period } => period as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_switches_with_zero_lambda() {
        let mut s = SwitchSchedule::new(3, 0.0, 1.0, 42);
        for _ in 0..1000 {
            let (c, switched) = s.tick();
            assert_eq!(c, 0);
            assert!(!switched);
        }
    }

    #[test]
    fn always_switches_with_lambda_one() {
        let mut s = SwitchSchedule::new(2, 1.0, 1.0, 42);
        let mut prev = s.current();
        for _ in 0..50 {
            let (c, switched) = s.tick();
            assert!(switched);
            assert_ne!(c, prev, "with two concepts every switch alternates");
            prev = c;
        }
    }

    #[test]
    fn switch_rate_approximates_lambda() {
        let mut s = SwitchSchedule::new(4, 0.01, 1.0, 7);
        let switches = (0..100_000).filter(|_| s.tick().1).count();
        let rate = switches as f64 / 100_000.0;
        assert!((rate - 0.01).abs() < 0.002, "rate = {rate}");
    }

    #[test]
    fn zipf_biases_transitions_toward_low_ranks() {
        // With a strong Zipf exponent, concept 0 should be the most common
        // destination when switching away from others.
        let mut s = SwitchSchedule::new(4, 1.0, 2.0, 11);
        let mut dest_counts = [0usize; 4];
        let mut prev = s.current();
        for _ in 0..20_000 {
            let (c, _) = s.tick();
            if prev != 0 {
                dest_counts[c] += 1;
            }
            prev = c;
        }
        assert!(dest_counts[0] > dest_counts[2]);
        assert!(dest_counts[0] > dest_counts[3]);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = SwitchSchedule::new(3, 0.05, 1.0, 5);
        let mut b = SwitchSchedule::new(3, 0.05, 1.0, 5);
        for _ in 0..1000 {
            assert_eq!(a.tick(), b.tick());
        }
    }

    #[test]
    fn expected_run_length_inverse_lambda() {
        let s = SwitchSchedule::new(2, 0.001, 1.0, 1);
        assert_eq!(s.expected_run_length(), 1000.0);
        assert!(SwitchSchedule::new(2, 0.0, 1.0, 1)
            .expected_run_length()
            .is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_concept() {
        SwitchSchedule::new(1, 0.1, 1.0, 0);
    }

    #[test]
    fn periodic_cycles_round_robin() {
        let mut s = SwitchSchedule::periodic(3, 5, 0);
        let mut seen = Vec::new();
        for _ in 0..30 {
            seen.push(s.tick());
        }
        // first 5 records concept 0 (no switch), then 5 of concept 1, …
        for (i, &(c, switched)) in seen.iter().enumerate() {
            assert_eq!(c, (i / 5) % 3, "record {i}");
            assert_eq!(switched, i >= 5 && i % 5 == 0, "record {i}");
        }
        assert_eq!(s.expected_run_length(), 5.0);
    }
}
