//! The Stagger concept-shifting stream (paper §IV-A).
//!
//! Records have three symbolic attributes — color ∈ {green, blue, red},
//! shape ∈ {triangle, circle, rectangle}, size ∈ {small, medium, large} —
//! and a boolean class determined by the active concept:
//!
//! * **A**: positive iff color = red ∧ size = small
//! * **B**: positive iff color = green ∨ shape = circle
//! * **C**: positive iff size = medium ∨ size = large
//!
//! A fourth, **held-out** concept exists for novelty experiments
//! ([`NOVEL_CONCEPT`]: positive iff color = blue). [`StaggerSource`]
//! never generates it — it cycles the three classic concepts only — so a
//! model mined on any Stagger history has provably never seen it; feed
//! records labeled by [`stagger_label`]`(NOVEL_CONCEPT, …)` to exercise
//! novel-concept detection and admission (the `hom-adapt` crate).

use std::sync::Arc;

use hom_data::rng::{derive_seed, seeded};
use hom_data::{Attribute, Schema, StreamRecord, StreamSource};
use rand::rngs::StdRng;
use rand::Rng;

use crate::schedule::SwitchSchedule;

/// Color codes in schema order.
pub const GREEN: f64 = 0.0;
/// See [`GREEN`].
pub const BLUE: f64 = 1.0;
/// See [`GREEN`].
pub const RED: f64 = 2.0;
/// Shape codes in schema order.
pub const TRIANGLE: f64 = 0.0;
/// See [`TRIANGLE`].
pub const CIRCLE: f64 = 1.0;
/// See [`TRIANGLE`].
pub const RECTANGLE: f64 = 2.0;
/// Size codes in schema order.
pub const SMALL: f64 = 0.0;
/// See [`SMALL`].
pub const MEDIUM: f64 = 1.0;
/// See [`SMALL`].
pub const LARGE: f64 = 2.0;

/// Number of stable Stagger concepts the stream cycles through.
pub const N_CONCEPTS: usize = 3;

/// Id of the held-out novel concept ("positive iff color = blue"), never
/// produced by [`StaggerSource`]. Understood by [`stagger_label`] so
/// novelty experiments can label records with a concept the mined model
/// cannot contain.
pub const NOVEL_CONCEPT: usize = 3;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct StaggerParams {
    /// Per-record concept-switch probability (paper default 0.001).
    pub lambda: f64,
    /// Zipf exponent of the transition law (paper default 1.0).
    pub zipf_z: f64,
    /// When set, overrides the random schedule with deterministic
    /// round-robin switching every `period` records (used by the
    /// change-point-aligned experiments of Figs. 5–6).
    pub period: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for StaggerParams {
    fn default() -> Self {
        StaggerParams {
            lambda: 0.001,
            zipf_z: 1.0,
            period: None,
            seed: 0,
        }
    }
}

/// The Stagger stream source.
pub struct StaggerSource {
    schema: Arc<Schema>,
    schedule: SwitchSchedule,
    rng: StdRng,
}

/// The Stagger schema: 3 categorical attributes, binary class.
pub fn stagger_schema() -> Arc<Schema> {
    Schema::new(
        vec![
            Attribute::categorical("color", ["green", "blue", "red"]),
            Attribute::categorical("shape", ["triangle", "circle", "rectangle"]),
            Attribute::categorical("size", ["small", "medium", "large"]),
        ],
        ["negative", "positive"],
    )
}

/// Ground-truth label of `(color, shape, size)` under concept `concept`
/// (including the held-out [`NOVEL_CONCEPT`]).
pub fn stagger_label(concept: usize, color: f64, shape: f64, size: f64) -> u32 {
    let positive = match concept {
        0 => color == RED && size == SMALL,
        1 => color == GREEN || shape == CIRCLE,
        2 => size == MEDIUM || size == LARGE,
        3 => color == BLUE,
        _ => panic!("stagger has exactly 3 stable concepts plus the held-out novel one"),
    };
    u32::from(positive)
}

impl StaggerSource {
    /// Build a source from parameters.
    pub fn new(params: StaggerParams) -> Self {
        let schedule = match params.period {
            Some(p) => SwitchSchedule::periodic(N_CONCEPTS, p, derive_seed(params.seed, 0)),
            None => SwitchSchedule::new(
                N_CONCEPTS,
                params.lambda,
                params.zipf_z,
                derive_seed(params.seed, 0),
            ),
        };
        StaggerSource {
            schema: stagger_schema(),
            schedule,
            rng: seeded(derive_seed(params.seed, 1)),
        }
    }
}

impl StreamSource for StaggerSource {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_record(&mut self) -> StreamRecord {
        let (concept, _) = self.schedule.tick();
        let color = f64::from(self.rng.gen_range(0..3u8));
        let shape = f64::from(self.rng.gen_range(0..3u8));
        let size = f64::from(self.rng.gen_range(0..3u8));
        StreamRecord {
            x: Box::new([color, shape, size]),
            y: stagger_label(concept, color, shape, size),
            concept,
            drifting: false,
        }
    }

    fn n_concepts(&self) -> Option<usize> {
        Some(N_CONCEPTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_data::stream::collect;

    #[test]
    fn labels_match_concept_definitions() {
        // concept A: red AND small
        assert_eq!(stagger_label(0, RED, TRIANGLE, SMALL), 1);
        assert_eq!(stagger_label(0, RED, TRIANGLE, MEDIUM), 0);
        assert_eq!(stagger_label(0, BLUE, TRIANGLE, SMALL), 0);
        // concept B: green OR circle
        assert_eq!(stagger_label(1, GREEN, TRIANGLE, LARGE), 1);
        assert_eq!(stagger_label(1, BLUE, CIRCLE, LARGE), 1);
        assert_eq!(stagger_label(1, BLUE, TRIANGLE, LARGE), 0);
        // concept C: medium OR large
        assert_eq!(stagger_label(2, BLUE, TRIANGLE, MEDIUM), 1);
        assert_eq!(stagger_label(2, BLUE, TRIANGLE, LARGE), 1);
        assert_eq!(stagger_label(2, RED, CIRCLE, SMALL), 0);
        // held-out novel concept: blue
        assert_eq!(stagger_label(NOVEL_CONCEPT, BLUE, TRIANGLE, SMALL), 1);
        assert_eq!(stagger_label(NOVEL_CONCEPT, BLUE, CIRCLE, LARGE), 1);
        assert_eq!(stagger_label(NOVEL_CONCEPT, RED, CIRCLE, SMALL), 0);
        assert_eq!(stagger_label(NOVEL_CONCEPT, GREEN, TRIANGLE, MEDIUM), 0);
    }

    #[test]
    fn novel_concept_is_never_generated() {
        let mut s = StaggerSource::new(StaggerParams {
            lambda: 0.05,
            ..Default::default()
        });
        for _ in 0..2000 {
            assert!(s.next_record().concept < N_CONCEPTS);
        }
    }

    #[test]
    fn stream_is_schema_valid_and_deterministic() {
        let mut a = StaggerSource::new(StaggerParams::default());
        let mut b = StaggerSource::new(StaggerParams::default());
        for _ in 0..500 {
            let ra = a.next_record();
            let rb = b.next_record();
            assert_eq!(ra, rb);
            assert!(a.schema().validate_row(&ra.x).is_ok());
            assert!(ra.concept < 3);
            assert!(!ra.drifting);
            assert_eq!(ra.y, stagger_label(ra.concept, ra.x[0], ra.x[1], ra.x[2]));
        }
    }

    #[test]
    fn concept_changes_occur_at_high_lambda() {
        let mut s = StaggerSource::new(StaggerParams {
            lambda: 0.05,
            ..Default::default()
        });
        let (_, concepts) = collect(&mut s, 2000);
        let distinct: std::collections::HashSet<_> = concepts.iter().collect();
        assert_eq!(distinct.len(), 3, "all three concepts should appear");
        let changes = concepts.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(changes > 30, "changes = {changes}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StaggerSource::new(StaggerParams::default());
        let mut b = StaggerSource::new(StaggerParams {
            seed: 1,
            ..Default::default()
        });
        let same = (0..100)
            .filter(|_| a.next_record() == b.next_record())
            .count();
        assert!(same < 30);
    }
}
