//! Property-based tests of the baseline stream classifiers: whatever the
//! label stream does, RePro and WCE must stay total (no panics), produce
//! valid class ids, and obey their structural bounds.

use std::sync::Arc;

use hom_baselines::{RePro, ReProParams, Wce, WceParams};
use hom_classifiers::{DecisionTreeLearner, Learner};
use hom_data::{Attribute, Schema};
use proptest::prelude::*;

fn schema() -> Arc<Schema> {
    Schema::new(
        vec![
            Attribute::numeric("x"),
            Attribute::categorical("c", ["u", "v"]),
        ],
        ["a", "b", "c"],
    )
}

fn learner() -> Arc<dyn Learner> {
    Arc::new(DecisionTreeLearner::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// WCE survives arbitrary labeled streams and never exceeds its
    /// ensemble cap; predictions are always valid class ids.
    #[test]
    fn wce_is_total(
        records in proptest::collection::vec((0.0f64..1.0, 0u32..2, 0u32..3), 1..400),
        chunk_size in 2usize..60,
        n_chunks in 1usize..6,
    ) {
        let mut wce = Wce::new(
            schema(),
            learner(),
            WceParams { chunk_size, n_chunks },
        );
        for &(x, c, y) in &records {
            let row = [x, f64::from(c)];
            let pred = wce.predict(&row);
            prop_assert!(pred < 3);
            wce.learn(&row, y);
            prop_assert!(wce.n_members() <= n_chunks);
        }
    }

    /// RePro survives arbitrary labeled streams; its concept history only
    /// grows when full relearning happens, so it is bounded by the number
    /// of completed stable-learning phases plus one.
    #[test]
    fn repro_is_total(
        records in proptest::collection::vec((0.0f64..1.0, 0u32..2, 0u32..3), 1..400),
        stable_size in 10usize..80,
    ) {
        let mut repro = RePro::new(
            schema(),
            learner(),
            ReProParams {
                trigger_window: 8,
                stable_size,
                ..Default::default()
            },
        );
        for &(x, c, y) in &records {
            let row = [x, f64::from(c)];
            let pred = repro.predict(&row);
            prop_assert!(pred < 3);
            repro.learn(&row, y);
        }
        let max_concepts = records.len() / stable_size + 1;
        prop_assert!(
            repro.n_concepts() <= max_concepts,
            "{} concepts from {} records with stable_size {}",
            repro.n_concepts(),
            records.len(),
            stable_size
        );
    }

    /// A stationary, perfectly learnable stream never triggers RePro into
    /// growing its history beyond the bootstrap concept.
    #[test]
    fn repro_stationary_stays_single_concept(seed in any::<u64>()) {
        let mut repro = RePro::new(
            schema(),
            learner(),
            ReProParams {
                trigger_window: 20,
                stable_size: 50,
                ..Default::default()
            },
        );
        let mut state = seed | 1;
        for _ in 0..600 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            let c = (state & 1) as f64;
            // deterministic 3-class rule on x only
            let y = if x < 0.33 { 0 } else if x < 0.66 { 1 } else { 2 };
            repro.learn(&[x, c], y);
        }
        prop_assert_eq!(repro.n_concepts(), 1);
    }
}
