//! The train-once strawman.

use std::sync::Arc;

use hom_classifiers::{Classifier, Learner, MajorityLearner};
use hom_data::{ClassId, Dataset};

/// A classifier trained once on the historical dataset and never updated.
///
/// Not one of the paper's competitors, but the natural floor: on evolving
/// data any adaptive method must beat it, and on stationary data nothing
/// should beat it by much. Used by tests and ablation benches.
pub struct StaticModel {
    model: Box<dyn Classifier>,
}

impl StaticModel {
    /// Train on the full historical dataset.
    ///
    /// An empty dataset yields a degenerate majority model over class 0.
    pub fn build(historical: &Dataset, learner: &Arc<dyn Learner>) -> Self {
        let model = if historical.is_empty() {
            MajorityLearner.fit(&Dataset::new(Arc::clone(historical.schema())))
        } else {
            learner.fit(historical)
        };
        StaticModel { model }
    }

    /// Predict an unlabeled record.
    pub fn predict(&mut self, x: &[f64]) -> ClassId {
        self.model.predict(x)
    }

    /// Labels are ignored — this model never adapts.
    pub fn learn(&mut self, _x: &[f64], _y: ClassId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::DecisionTreeLearner;
    use hom_data::{Attribute, Schema};

    #[test]
    fn never_adapts() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let mut d = Dataset::new(schema);
        for i in 0..50 {
            d.push(&[i as f64], u32::from(i >= 25));
        }
        let learner: Arc<dyn Learner> = Arc::new(DecisionTreeLearner::new());
        let mut m = StaticModel::build(&d, &learner);
        assert_eq!(m.predict(&[40.0]), 1);
        // feed contradicting labels; prediction must not move
        for _ in 0..100 {
            m.learn(&[40.0], 0);
        }
        assert_eq!(m.predict(&[40.0]), 1);
    }

    #[test]
    fn empty_history_predicts_class_zero() {
        let schema = Schema::new(vec![Attribute::numeric("x")], ["a", "b"]);
        let learner: Arc<dyn Learner> = Arc::new(DecisionTreeLearner::new());
        let mut m = StaticModel::build(&Dataset::new(schema), &learner);
        assert_eq!(m.predict(&[1.0]), 0);
    }
}
