//! Baseline stream classifiers the paper compares against (§IV-B).
//!
//! * [`RePro`] — Yang, Wu & Zhu (KDD'05): trigger-window change detection,
//!   a history of stored concepts reused when a detected "new" concept is
//!   conceptually equivalent to an old one, and proactive prediction of
//!   the next concept from historical transition counts. Re-implemented
//!   from its published description with the parameter values this paper
//!   uses (trigger window 20, stable-learning size 200, trigger error
//!   threshold 0.2, equivalence/proactive thresholds 0.8).
//! * [`Wce`] — Wang, Fan, Yu & Han (KDD'03): an ensemble of classifiers
//!   trained on the most recent fixed-size chunks, weighted by
//!   `MSE_r − MSE_i` on the latest chunk, with instance-based pruning at
//!   prediction time (chunk size 100, 20 chunks in this paper).
//! * [`StaticModel`] — a train-once-never-update strawman, the floor any
//!   adaptive method must beat on evolving data.
//!
//! All three expose the same two-call protocol used by the experiment
//! harness: `predict(x)` classifies an unlabeled record with the state
//! built from labels seen so far, and `learn(x, y)` consumes the labeled
//! record of the same timestamp afterwards.

pub mod dwm;
pub mod repro;
pub mod static_model;
pub mod wce;

pub use dwm::{Dwm, DwmParams};
pub use repro::{RePro, ReProParams};
pub use static_model::StaticModel;
pub use wce::{Wce, WceParams};
