//! Dynamic Weighted Majority (Kolter & Maloof, ICDM'03 — the paper's
//! ref. \[15\]).
//!
//! An extension baseline (not one of the paper's two competitors): a
//! self-sizing ensemble of *incremental* learners. Each expert carries a
//! weight; every `period` records the weights of experts that
//! misclassified the latest record are multiplied by β, experts whose
//! weight falls below θ are removed, and a fresh expert is added whenever
//! the weighted-majority prediction itself was wrong. All experts train
//! on every record. Like WCE it chases the current trend; unlike WCE its
//! ensemble size adapts to the stream's stability.

use std::sync::Arc;

use hom_classifiers::incremental::OnlineNaiveBayes;
use hom_classifiers::{argmax, Classifier};
use hom_data::{ClassId, Dataset, Schema};

/// DWM hyper-parameters (defaults from Kolter & Maloof).
#[derive(Debug, Clone)]
pub struct DwmParams {
    /// Weight multiplier for wrong experts (0.5).
    pub beta: f64,
    /// Removal threshold on normalized weights (0.01).
    pub theta: f64,
    /// Records between weight updates / expert management (50).
    pub period: usize,
    /// Hard cap on the ensemble size.
    pub max_experts: usize,
}

impl Default for DwmParams {
    fn default() -> Self {
        DwmParams {
            beta: 0.5,
            theta: 0.01,
            period: 50,
            max_experts: 25,
        }
    }
}

struct Expert {
    model: OnlineNaiveBayes,
    weight: f64,
}

/// The DWM stream classifier over incremental naive Bayes experts.
pub struct Dwm {
    params: DwmParams,
    schema: Arc<Schema>,
    experts: Vec<Expert>,
    step: usize,
}

impl Dwm {
    /// A fresh ensemble with one untrained expert.
    ///
    /// # Panics
    /// Panics on non-sensical parameters (β or θ outside (0,1), zero
    /// period or capacity).
    pub fn new(schema: Arc<Schema>, params: DwmParams) -> Self {
        assert!((0.0..1.0).contains(&params.beta), "beta must be in (0,1)");
        assert!((0.0..1.0).contains(&params.theta), "theta must be in (0,1)");
        assert!(params.period >= 1, "period must be positive");
        assert!(params.max_experts >= 1, "need room for one expert");
        let first = Expert {
            model: OnlineNaiveBayes::new(Arc::clone(&schema)),
            weight: 1.0,
        };
        Dwm {
            params,
            schema,
            experts: vec![first],
            step: 0,
        }
    }

    /// Build by streaming the historical dataset through [`Self::learn`].
    pub fn build(historical: &Dataset, params: DwmParams) -> Self {
        let mut dwm = Dwm::new(Arc::clone(historical.schema()), params);
        for (x, y) in historical.iter() {
            dwm.learn(x, y);
        }
        dwm
    }

    /// Current ensemble size.
    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Weighted-majority prediction.
    pub fn predict(&mut self, x: &[f64]) -> ClassId {
        let mut votes = vec![0.0; self.schema.n_classes()];
        for e in &self.experts {
            votes[e.model.predict(x) as usize] += e.weight;
        }
        argmax(&votes) as ClassId
    }

    /// Consume the labeled record of the current timestamp.
    pub fn learn(&mut self, x: &[f64], y: ClassId) {
        self.step += 1;
        let manage = self.step.is_multiple_of(self.params.period);

        // Expert predictions and the global vote, *before* training.
        let mut votes = vec![0.0; self.schema.n_classes()];
        let mut wrong = Vec::new();
        for (i, e) in self.experts.iter().enumerate() {
            let p = e.model.predict(x);
            votes[p as usize] += e.weight;
            if p != y {
                wrong.push(i);
            }
        }
        let global = argmax(&votes) as ClassId;

        if manage {
            for &i in &wrong {
                self.experts[i].weight *= self.params.beta;
            }
            // Normalize so the best expert has weight 1, then drop the
            // under-performers.
            let max_w = self
                .experts
                .iter()
                .map(|e| e.weight)
                .fold(f64::MIN_POSITIVE, f64::max);
            for e in &mut self.experts {
                e.weight /= max_w;
            }
            let theta = self.params.theta;
            self.experts.retain(|e| e.weight >= theta);
            if global != y && self.experts.len() < self.params.max_experts {
                self.experts.push(Expert {
                    model: OnlineNaiveBayes::new(Arc::clone(&self.schema)),
                    weight: 1.0,
                });
            }
            if self.experts.is_empty() {
                self.experts.push(Expert {
                    model: OnlineNaiveBayes::new(Arc::clone(&self.schema)),
                    weight: 1.0,
                });
            }
        }

        // Every expert trains on every record.
        for e in &mut self.experts {
            e.model.update(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_data::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::numeric("x")], ["a", "b"])
    }

    fn xs(n: usize, seed: u64) -> impl Iterator<Item = f64> {
        let mut state = seed | 1;
        (0..n).map(move |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
    }

    #[test]
    fn learns_a_stationary_concept() {
        let mut dwm = Dwm::new(schema(), DwmParams::default());
        for x in xs(400, 1) {
            dwm.learn(&[x], u32::from(x > 0.5));
        }
        assert_eq!(dwm.predict(&[0.9]), 1);
        assert_eq!(dwm.predict(&[0.1]), 0);
    }

    #[test]
    fn adapts_after_concept_flip() {
        let mut dwm = Dwm::new(schema(), DwmParams::default());
        for x in xs(500, 2) {
            dwm.learn(&[x], u32::from(x > 0.5));
        }
        for x in xs(1500, 3) {
            dwm.learn(&[x], u32::from(x <= 0.5));
        }
        assert_eq!(dwm.predict(&[0.9]), 0);
        assert_eq!(dwm.predict(&[0.1]), 1);
    }

    #[test]
    fn ensemble_size_adapts_but_is_capped() {
        let params = DwmParams {
            max_experts: 5,
            ..Default::default()
        };
        let mut dwm = Dwm::new(schema(), params);
        // alternate concepts frequently to provoke expert creation
        for (i, x) in xs(3000, 4).enumerate() {
            let flipped = (i / 150) % 2 == 1;
            dwm.learn(&[x], u32::from(x > 0.5) ^ u32::from(flipped));
        }
        assert!(dwm.n_experts() >= 2, "experts = {}", dwm.n_experts());
        assert!(dwm.n_experts() <= 5);
    }

    #[test]
    fn build_from_historical() {
        let mut d = Dataset::new(schema());
        for x in xs(300, 5) {
            d.push(&[x], u32::from(x > 0.5));
        }
        let mut dwm = Dwm::build(&d, DwmParams::default());
        assert_eq!(dwm.predict(&[0.8]), 1);
    }

    #[test]
    fn never_empties_the_ensemble() {
        // Adversarial labels shrink every weight; the ensemble must keep
        // at least one expert.
        let mut dwm = Dwm::new(schema(), DwmParams::default());
        let mut flip = false;
        for x in xs(2000, 6) {
            flip = !flip;
            dwm.learn(&[x], u32::from(flip));
            assert!(dwm.n_experts() >= 1);
        }
    }
}
