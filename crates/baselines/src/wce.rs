//! The Weighted Classifier Ensemble (Wang, Fan, Yu & Han, KDD'03).
//!
//! The stream is divided into sequential chunks of fixed size; each
//! completed chunk trains one base classifier. Ensemble members are
//! weighted by their benefit over random guessing on the most recent
//! chunk: `wᵢ = MSE_r − MSEᵢ`, where `MSEᵢ` is classifier `i`'s mean
//! squared error `(1 − pᵢ(y|x))²` on that chunk and `MSE_r = Σ p(c)(1−p(c))²`
//! is the error of a random predictor under the chunk's class prior.
//! Classifiers with non-positive weight are dropped; at most `n_chunks`
//! classifiers are retained (the best ones).
//!
//! Prediction uses instance-based pruning (the KDD'03 §4.2 idea, also
//! responsible for WCE's test time *decreasing* with the change rate in
//! the paper's Fig. 3): classifiers are consulted in decreasing weight
//! order and enumeration stops once the leading class cannot be overtaken
//! by the remaining weight mass.

use std::sync::Arc;

use hom_classifiers::{argmax, Classifier, Learner};
use hom_data::metrics::mse_random;
use hom_data::{ClassId, Dataset};

/// WCE hyper-parameters.
#[derive(Debug, Clone)]
pub struct WceParams {
    /// Records per chunk (this paper's experiments: 100).
    pub chunk_size: usize,
    /// Maximum ensemble size (this paper's experiments: 20).
    pub n_chunks: usize,
}

impl Default for WceParams {
    fn default() -> Self {
        WceParams {
            chunk_size: 100,
            n_chunks: 20,
        }
    }
}

struct Member {
    model: Box<dyn Classifier>,
    weight: f64,
}

/// The WCE stream classifier.
pub struct Wce {
    params: WceParams,
    learner: Arc<dyn Learner>,
    /// Ensemble members sorted by decreasing weight.
    members: Vec<Member>,
    /// The chunk currently being filled.
    chunk: Dataset,
    n_classes: usize,
    scratch: Vec<f64>,
}

impl Wce {
    /// An empty ensemble over `schema`-shaped records.
    pub fn new(
        schema: Arc<hom_data::Schema>,
        learner: Arc<dyn Learner>,
        params: WceParams,
    ) -> Self {
        assert!(params.chunk_size >= 2, "chunks must train a classifier");
        assert!(params.n_chunks >= 1, "ensemble needs at least one member");
        let n_classes = schema.n_classes();
        Wce {
            params,
            learner,
            members: Vec::new(),
            chunk: Dataset::new(schema),
            n_classes,
            scratch: vec![0.0; n_classes],
        }
    }

    /// Build the initial ensemble by streaming the historical dataset
    /// through [`Self::learn`].
    pub fn build(historical: &Dataset, learner: Arc<dyn Learner>, params: WceParams) -> Self {
        let mut wce = Wce::new(Arc::clone(historical.schema()), learner, params);
        for (x, y) in historical.iter() {
            wce.learn_row(x, y);
        }
        wce
    }

    /// Number of live ensemble members.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Predict an unlabeled record with instance-based pruning.
    pub fn predict(&mut self, x: &[f64]) -> ClassId {
        if self.members.is_empty() {
            // Cold start: majority of the partial chunk, else class 0.
            return if self.chunk.is_empty() {
                0
            } else {
                argmax(
                    &self
                        .chunk
                        .class_counts()
                        .iter()
                        .map(|&c| c as f64)
                        .collect::<Vec<_>>(),
                ) as ClassId
            };
        }
        let mut scores = vec![0.0; self.n_classes];
        let mut remaining: f64 = self.members.iter().map(|m| m.weight).sum();
        for member in &self.members {
            remaining -= member.weight;
            member.model.predict_proba(x, &mut self.scratch);
            for (s, &p) in scores.iter_mut().zip(self.scratch.iter()) {
                *s += member.weight * p;
            }
            let best = argmax(&scores);
            let runner_up = scores
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != best)
                .map(|(_, &v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            if scores[best] - runner_up > remaining {
                break; // no remaining member can change the winner
            }
        }
        argmax(&scores) as ClassId
    }

    /// Consume the labeled record of the current timestamp.
    pub fn learn(&mut self, x: &[f64], y: ClassId) {
        self.learn_row(x, y);
    }

    fn learn_row(&mut self, x: &[f64], y: ClassId) {
        self.chunk.push(x, y);
        if self.chunk.len() >= self.params.chunk_size {
            self.finish_chunk();
        }
    }

    /// Train a classifier on the completed chunk, reweight everything on
    /// that chunk, and retain the best `n_chunks` members.
    fn finish_chunk(&mut self) {
        let empty = Dataset::new(Arc::clone(self.chunk.schema()));
        let chunk = std::mem::replace(&mut self.chunk, empty);

        // MSE_r from the chunk's class prior.
        let n = chunk.len() as f64;
        let prior: Vec<f64> = chunk.class_counts().iter().map(|&c| c as f64 / n).collect();
        let mse_r = mse_random(&prior);

        let new_model = self.learner.fit(&chunk);
        self.members.push(Member {
            model: new_model,
            weight: 0.0,
        });

        // Weight every member by MSE_r − MSE_i on this chunk.
        for member in &mut self.members {
            let mut mse = 0.0;
            for (x, y) in chunk.iter() {
                member.model.predict_proba(x, &mut self.scratch);
                let p = self.scratch[y as usize];
                mse += (1.0 - p) * (1.0 - p);
            }
            mse /= n;
            member.weight = (mse_r - mse).max(0.0);
        }
        // For the KDD'03 scheme a weight of exactly 0 removes a member,
        // but the freshly trained model is kept even when the chunk prior
        // is degenerate (mse_r = 0) so the ensemble is never empty.
        let keep_newest_floor = 1e-9;
        let last = self.members.len() - 1;
        if self.members[last].weight <= 0.0 {
            self.members[last].weight = keep_newest_floor;
        }
        self.members.retain(|m| m.weight > 0.0);
        self.members.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        self.members.truncate(self.params.n_chunks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::DecisionTreeLearner;
    use hom_data::{Attribute, Schema};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::numeric("x")], ["a", "b"])
    }

    fn learner() -> Arc<dyn Learner> {
        Arc::new(DecisionTreeLearner::new())
    }

    fn params() -> WceParams {
        WceParams {
            chunk_size: 50,
            n_chunks: 5,
        }
    }

    /// Pseudo-random x in [0,1) so every chunk sees both sides of the
    /// decision boundary.
    fn xs(n: usize, seed: u64) -> impl Iterator<Item = f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        (0..n).map(move |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
    }

    #[test]
    fn cold_start_predicts_without_members() {
        let mut wce = Wce::new(schema(), learner(), params());
        assert_eq!(wce.predict(&[0.5]), 0);
        wce.learn(&[0.0], 1);
        assert_eq!(wce.predict(&[0.5]), 1); // majority of partial chunk
        assert_eq!(wce.n_members(), 0);
    }

    #[test]
    fn learns_a_stationary_concept() {
        let mut wce = Wce::new(schema(), learner(), params());
        for x in xs(200, 1) {
            wce.learn(&[x], u32::from(x > 0.5));
        }
        assert!(wce.n_members() >= 1);
        assert_eq!(wce.predict(&[0.9]), 1);
        assert_eq!(wce.predict(&[0.1]), 0);
    }

    #[test]
    fn adapts_after_concept_flip() {
        let mut wce = Wce::new(schema(), learner(), params());
        for x in xs(300, 2) {
            wce.learn(&[x], u32::from(x > 0.5));
        }
        // flip the concept; after a few chunks the ensemble must follow
        for x in xs(300, 3) {
            wce.learn(&[x], u32::from(x <= 0.5));
        }
        assert_eq!(wce.predict(&[0.9]), 0);
        assert_eq!(wce.predict(&[0.1]), 1);
    }

    #[test]
    fn ensemble_size_is_capped() {
        let mut wce = Wce::new(schema(), learner(), params());
        for x in xs(2000, 4) {
            wce.learn(&[x], u32::from(x > 0.5));
        }
        assert!(wce.n_members() <= 5);
    }

    #[test]
    fn build_streams_historical_data() {
        let mut d = Dataset::new(schema());
        for x in xs(200, 5) {
            d.push(&[x], u32::from(x > 0.5));
        }
        let mut wce = Wce::build(&d, learner(), params());
        assert!(wce.n_members() >= 1);
        assert_eq!(wce.predict(&[0.8]), 1);
    }

    #[test]
    fn degenerate_single_class_chunk_keeps_newest() {
        let mut wce = Wce::new(schema(), learner(), params());
        for i in 0..100 {
            wce.learn(&[i as f64], 1); // pure class: mse_r = 0
        }
        // Each degenerate chunk zeroes every weight; only the newest
        // member survives through the keep-newest floor.
        assert_eq!(wce.n_members(), 1);
        assert_eq!(wce.predict(&[3.0]), 1);
    }
}
