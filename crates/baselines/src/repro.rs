//! RePro (Yang, Wu & Zhu, KDD'05): reactive + proactive prediction with
//! concept reuse.
//!
//! RePro keeps a *history* of stored concepts (classifiers) and a count
//! matrix of observed transitions between them. A sliding *trigger
//! window* of the latest labeled records monitors the current model; when
//! its error exceeds the trigger threshold a concept change is signalled:
//!
//! * **proactive** — if one historical successor of the current concept
//!   dominates the transition counts (probability ≥ the proactive
//!   threshold), switch to it immediately;
//! * **reactive** — collect `stable_size` records, train a candidate
//!   model, and compare it against every stored concept by prediction
//!   agreement on the collected data; reuse the stored concept when the
//!   agreement reaches the equivalence threshold, otherwise store the
//!   candidate as a brand-new concept.
//!
//! The paper's criticisms of RePro (§IV-C) — sensitivity to its many
//! parameters, and an ever-growing concept history when noise makes
//! "illusive" concepts — emerge naturally from this construction; the
//! parameters default to the values the paper used.

use std::collections::VecDeque;
use std::sync::Arc;

use hom_classifiers::{Classifier, Learner};
use hom_data::{ClassId, Dataset, Schema};

/// RePro hyper-parameters (defaults follow the paper's §IV-B).
#[derive(Debug, Clone)]
pub struct ReProParams {
    /// Sliding window length used for change detection (paper: 20).
    pub trigger_window: usize,
    /// Records collected to learn a stable concept (paper: 200).
    pub stable_size: usize,
    /// Window error rate that triggers a change (paper: 0.2).
    pub trigger_err_threshold: f64,
    /// Agreement ratio above which two models are the same concept
    /// (paper: 0.8).
    pub equivalence_threshold: f64,
    /// Transition probability above which the proactive guess is taken
    /// (paper: 0.8).
    pub proactive_threshold: f64,
}

impl Default for ReProParams {
    fn default() -> Self {
        ReProParams {
            trigger_window: 20,
            stable_size: 200,
            trigger_err_threshold: 0.2,
            equivalence_threshold: 0.8,
            proactive_threshold: 0.8,
        }
    }
}

struct StoredConcept {
    model: Box<dyn Classifier>,
}

enum Mode {
    /// No model yet: buffering the very first `stable_size` records.
    Bootstrap,
    /// Predicting with `current`, watching the trigger window.
    Stable,
    /// Change detected: buffering records to learn the new concept.
    Relearning,
}

/// The RePro stream classifier.
pub struct RePro {
    params: ReProParams,
    learner: Arc<dyn Learner>,
    schema: Arc<Schema>,
    history: Vec<StoredConcept>,
    /// `transitions[i][j]`: observed changes from concept i to concept j.
    transitions: Vec<Vec<u32>>,
    current: usize,
    mode: Mode,
    /// The trigger window: the latest labeled records with the current
    /// model's correctness on each.
    window: VecDeque<(Box<[f64]>, ClassId, bool)>,
    /// Records being collected (bootstrap or relearning).
    buffer: Dataset,
    /// The concept that was current when the last trigger fired (the
    /// transition source, independent of any proactive guess).
    prev_concept: usize,
}

impl RePro {
    /// A fresh RePro with no concepts yet.
    pub fn new(schema: Arc<Schema>, learner: Arc<dyn Learner>, params: ReProParams) -> Self {
        assert!(params.trigger_window >= 1);
        assert!(params.stable_size >= 2);
        let buffer = Dataset::new(Arc::clone(&schema));
        RePro {
            params,
            learner,
            schema,
            history: Vec::new(),
            transitions: Vec::new(),
            current: 0,
            mode: Mode::Bootstrap,
            window: VecDeque::new(),
            buffer,
            prev_concept: 0,
        }
    }

    /// Build by streaming the historical dataset through [`Self::learn`].
    pub fn build(historical: &Dataset, learner: Arc<dyn Learner>, params: ReProParams) -> Self {
        let mut repro = RePro::new(Arc::clone(historical.schema()), learner, params);
        for (x, y) in historical.iter() {
            repro.learn(x, y);
        }
        repro
    }

    /// Number of stored concepts (grows over time — the behaviour the
    /// paper criticises).
    pub fn n_concepts(&self) -> usize {
        self.history.len()
    }

    /// Predict an unlabeled record with the current concept's model.
    pub fn predict(&mut self, x: &[f64]) -> ClassId {
        match self.history.get(self.current) {
            Some(c) => c.model.predict(x),
            None => 0, // bootstrap cold start
        }
    }

    /// Consume the labeled record of the current timestamp.
    pub fn learn(&mut self, x: &[f64], y: ClassId) {
        match self.mode {
            Mode::Bootstrap => {
                self.buffer.push(x, y);
                if self.buffer.len() >= self.params.stable_size {
                    let model = self.learner.fit(&self.buffer);
                    self.history.push(StoredConcept { model });
                    self.transitions.push(vec![0]);
                    self.current = 0;
                    self.buffer = Dataset::new(Arc::clone(&self.schema));
                    self.mode = Mode::Stable;
                }
            }
            Mode::Stable => {
                let correct = self.history[self.current].model.predict(x) == y;
                self.window.push_back((x.into(), y, correct));
                if self.window.len() > self.params.trigger_window {
                    self.window.pop_front();
                }
                if self.window.len() == self.params.trigger_window {
                    let errors = self.window.iter().filter(|(_, _, c)| !c).count();
                    let err = errors as f64 / self.window.len() as f64;
                    if err > self.params.trigger_err_threshold {
                        self.on_trigger();
                    }
                }
            }
            Mode::Relearning => {
                self.buffer.push(x, y);
                // Once a window's worth of (mostly) new-concept records
                // has accumulated, try to identify a *reappearing*
                // concept: a stored model that fits the fresh data well
                // is reused immediately, skipping the full relearning
                // delay — RePro's key advantage on recurring concepts.
                if self.buffer.len() == self.params.trigger_window {
                    if let Some(j) = self.identify_reappearing() {
                        if j != self.prev_concept {
                            self.transitions[self.prev_concept][j] += 1;
                        }
                        self.current = j;
                        self.buffer = Dataset::new(Arc::clone(&self.schema));
                        self.window.clear();
                        self.mode = Mode::Stable;
                        return;
                    }
                }
                if self.buffer.len() >= self.params.stable_size {
                    self.finish_relearning();
                }
            }
        }
    }

    /// The stored concept (other than the one that just failed) whose
    /// model best fits the relearning buffer, when its accuracy reaches
    /// the equivalence threshold.
    fn identify_reappearing(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (j, stored) in self.history.iter().enumerate() {
            if j == self.prev_concept {
                continue;
            }
            let correct = self
                .buffer
                .iter()
                .filter(|(x, y)| stored.model.predict(x) == *y)
                .count();
            let acc = correct as f64 / self.buffer.len() as f64;
            if best.is_none_or(|(_, b)| acc > b) {
                best = Some((j, acc));
            }
        }
        best.filter(|&(_, acc)| acc >= self.params.equivalence_threshold)
            .map(|(j, _)| j)
    }

    /// A concept change was detected.
    fn on_trigger(&mut self) {
        let from = self.current;
        self.prev_concept = from;

        // Proactive guess: the historically dominant successor serves as
        // the interim predictor while the reactive path collects data.
        let row = &self.transitions[from];
        let total: u32 = row.iter().sum();
        if total > 0 {
            let (best_j, &best_count) = row
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .expect("non-empty row");
            if best_j != from
                && f64::from(best_count) / f64::from(total) >= self.params.proactive_threshold
            {
                self.current = best_j;
            }
        }
        self.mode = Mode::Relearning;
        self.buffer = Dataset::new(Arc::clone(&self.schema));
        // Seed the stable-learning buffer with the window's tail starting
        // at the first misclassified record — the best available estimate
        // of the change point. Earlier (still-correct) records belong to
        // the old concept and would poison the new model.
        let change_point = self
            .window
            .iter()
            .position(|(_, _, correct)| !correct)
            .unwrap_or(0);
        for (x, y, _) in self.window.drain(..).skip(change_point) {
            self.buffer.push(&x, y);
        }
    }

    /// The stable-learning buffer is full: identify or store the concept.
    fn finish_relearning(&mut self) {
        let candidate = self.learner.fit(&self.buffer);

        // Find the most conceptually-equivalent stored concept: agreement
        // between the candidate and the stored model on the buffer.
        let mut best: Option<(usize, f64)> = None;
        for (j, stored) in self.history.iter().enumerate() {
            let agree = self
                .buffer
                .iter()
                .filter(|(x, _)| stored.model.predict(x) == candidate.predict(x))
                .count();
            let ratio = agree as f64 / self.buffer.len() as f64;
            if best.is_none_or(|(_, b)| ratio > b) {
                best = Some((j, ratio));
            }
        }

        let prev = self.prev_concept;
        let next = match best {
            Some((j, ratio)) if ratio >= self.params.equivalence_threshold => j,
            _ => {
                // A brand-new concept.
                self.history.push(StoredConcept { model: candidate });
                for row in &mut self.transitions {
                    row.push(0);
                }
                self.transitions.push(vec![0; self.history.len()]);
                self.history.len() - 1
            }
        };
        if next != prev {
            self.transitions[prev][next] += 1;
        }
        self.current = next;
        self.buffer = Dataset::new(Arc::clone(&self.schema));
        self.window.clear();
        self.mode = Mode::Stable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_classifiers::DecisionTreeLearner;
    use hom_data::Attribute;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![Attribute::numeric("x")], ["a", "b"])
    }

    fn learner() -> Arc<dyn Learner> {
        Arc::new(DecisionTreeLearner::new())
    }

    fn small_params() -> ReProParams {
        ReProParams {
            trigger_window: 20,
            stable_size: 60,
            ..Default::default()
        }
    }

    /// Feed n records of a threshold concept (optionally flipped).
    fn feed(repro: &mut RePro, n: usize, flipped: bool, offset: usize) {
        for i in 0..n {
            let x = ((i + offset) % 100) as f64 / 100.0;
            let y = u32::from(x > 0.5) ^ u32::from(flipped);
            repro.learn(&[x], y);
        }
    }

    #[test]
    fn bootstrap_then_stable() {
        let mut r = RePro::new(schema(), learner(), small_params());
        assert_eq!(r.predict(&[0.9]), 0); // cold start
        feed(&mut r, 60, false, 0);
        assert_eq!(r.n_concepts(), 1);
        assert_eq!(r.predict(&[0.9]), 1);
        assert_eq!(r.predict(&[0.1]), 0);
    }

    #[test]
    fn detects_change_and_learns_new_concept() {
        let mut r = RePro::new(schema(), learner(), small_params());
        feed(&mut r, 200, false, 0);
        assert_eq!(r.n_concepts(), 1);
        feed(&mut r, 200, true, 0); // flipped concept
        assert_eq!(r.n_concepts(), 2);
        assert_eq!(r.predict(&[0.9]), 0);
    }

    #[test]
    fn reuses_stored_concept_on_recurrence() {
        let mut r = RePro::new(schema(), learner(), small_params());
        feed(&mut r, 200, false, 0);
        feed(&mut r, 200, true, 0);
        assert_eq!(r.n_concepts(), 2);
        // original concept recurs: equivalence check must reuse it
        feed(&mut r, 200, false, 0);
        assert_eq!(r.n_concepts(), 2, "recurring concept must be reused");
        assert_eq!(r.predict(&[0.9]), 1);
    }

    #[test]
    fn no_trigger_on_stationary_stream() {
        let mut r = RePro::new(schema(), learner(), small_params());
        feed(&mut r, 1000, false, 0);
        assert_eq!(r.n_concepts(), 1);
    }

    #[test]
    fn build_from_historical_dataset() {
        let mut d = Dataset::new(schema());
        for i in 0..400 {
            let x = (i % 100) as f64 / 100.0;
            let flipped = i >= 200;
            d.push(&[x], u32::from(x > 0.5) ^ u32::from(flipped));
        }
        let mut r = RePro::build(&d, learner(), small_params());
        assert!(r.n_concepts() >= 2);
        assert_eq!(r.predict(&[0.9]), 0); // ends in the flipped concept
    }

    /// With alternating A→B→A→B transitions, the proactive guess should
    /// point at the right successor; we just verify the transition counts
    /// accumulate and the classifier keeps tracking.
    #[test]
    fn tracks_alternating_concepts() {
        let mut r = RePro::new(schema(), learner(), small_params());
        for round in 0..6 {
            feed(&mut r, 200, round % 2 == 1, 0);
        }
        assert!(
            r.n_concepts() <= 3,
            "alternation must not inflate history: {}",
            r.n_concepts()
        );
    }
}
