//! Deterministic scoped-thread parallelism for the offline build pipeline.
//!
//! The offline phase of the high-order model — per-block classifier
//! training, candidate-merger fits, pairwise concept distances, per-concept
//! retraining, cross-validation folds — is embarrassingly parallel across
//! items, and the paper-scale workloads (KDDCUP'99 is ~4.9M records) make
//! it the scalability bottleneck. This crate supplies the one primitive
//! those call sites need: an **order-preserving parallel map** over an
//! index range, built on [`std::thread::scope`] (the environment cannot
//! fetch `rayon`; this is the in-repo equivalent of its
//! `par_iter().map().collect()` on the API subset the workspace uses —
//! see `ARCHITECTURE.md`).
//!
//! # Determinism contract
//!
//! Every entry point guarantees **bit-identical results for any thread
//! count**, provided the per-item closure is itself deterministic in
//! `(index, item)`:
//!
//! * results are collected **in item order**, regardless of which worker
//!   computed them or when it finished;
//! * the closure receives the item **index**, so callers can derive
//!   per-item RNG seeds (e.g. `hom_data::rng::derive_seed(seed, index)`)
//!   instead of sharing one sequential RNG stream across items;
//! * no reduction reorders floating-point accumulation: the caller folds
//!   the returned `Vec` sequentially.
//!
//! Observability (an [`hom_obs::Obs`] attached via [`Pool::with_obs`])
//! never weakens the contract: it only *measures* — which worker ran how
//! many tasks for how long — and results are placed by index either way.
//!
//! The build path threads a [`Pool`] through `BuildOptions { threads,
//! sink }`: `None` means one worker per available core, `Some(1)` is the
//! serial reference path (no threads are spawned at all).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use hom_obs::Obs;

/// Number of workers a [`Pool`] with `threads: None` will use: one per
/// available core (1 if the runtime cannot tell).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed degree of parallelism for the offline build, with an optional
/// observability handle.
///
/// Cheap to clone; carries no OS resources. Threads are spawned per call
/// via [`std::thread::scope`], so a `Pool` can be embedded in plain
/// parameter structs and shared freely.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    obs: Obs,
}

impl Default for Pool {
    /// One worker per available core, no observability.
    fn default() -> Self {
        Pool::new(None)
    }
}

/// How one parallel map distributed its work: per-worker task counts and
/// busy time (time spent inside the caller's closure, excluding queue
/// contention). Returned by [`Pool::map_range_stats`] and emitted as the
/// `pool.worker_tasks` / `pool.worker_busy_us` series when the pool
/// carries an enabled [`Obs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed by each worker (`tasks.len()` = workers used).
    pub tasks: Vec<u64>,
    /// Time each worker spent executing tasks.
    pub busy: Vec<Duration>,
}

impl PoolStats {
    /// Total tasks across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.tasks.iter().sum()
    }
}

impl Pool {
    /// A pool with the given worker count; `None` uses one worker per
    /// available core, and a count of 0 is clamped to 1.
    pub fn new(threads: Option<usize>) -> Self {
        Pool::with_obs(threads, Obs::none())
    }

    /// [`Pool::new`] with an observability handle: each parallel map
    /// emits its work distribution (see [`PoolStats`]) to `obs`.
    pub fn with_obs(threads: Option<usize>, obs: Obs) -> Self {
        let threads = threads.unwrap_or_else(available_threads).max(1);
        Pool { threads, obs }
    }

    /// The serial pool (1 worker, never spawns).
    pub fn serial() -> Self {
        Pool {
            threads: 1,
            obs: Obs::none(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The observability handle this pool (and the pipeline stages it
    /// runs) emit to. Disabled unless set via [`Pool::with_obs`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Map `f` over `0..n` in parallel, returning results **in index
    /// order** (the determinism contract above).
    ///
    /// Work is distributed dynamically: workers claim indices from a
    /// shared atomic counter, so uneven per-item costs (a big candidate
    /// fit next to a tiny one) do not idle workers. With 1 worker or
    /// `n <= 1` the map runs inline on the caller's thread.
    pub fn map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let measure = self.obs.enabled();
        let (out, stats) = self.map_range_impl(n, f, measure);
        if let Some(stats) = stats {
            self.emit_stats(n, &stats);
        }
        out
    }

    /// [`Pool::map_range`], additionally returning how the work was
    /// distributed across workers. Always measures (and still emits to
    /// the pool's [`Obs`] when one is attached).
    pub fn map_range_stats<R, F>(&self, n: usize, f: F) -> (Vec<R>, PoolStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let (out, stats) = self.map_range_impl(n, f, true);
        let stats = stats.expect("measuring map returns stats");
        if self.obs.enabled() {
            self.emit_stats(n, &stats);
        }
        (out, stats)
    }

    fn emit_stats(&self, n: usize, stats: &PoolStats) {
        let tasks: Vec<f64> = stats.tasks.iter().map(|&t| t as f64).collect();
        let busy: Vec<f64> = stats.busy.iter().map(|d| d.as_micros() as f64).collect();
        // The series index is the map's item count, so a trace
        // distinguishes the big maps (block fits) from the tiny ones.
        self.obs.series("pool.worker_tasks", n as u64, &tasks);
        self.obs.series("pool.worker_busy_us", n as u64, &busy);
    }

    fn map_range_impl<R, F>(&self, n: usize, f: F, measure: bool) -> (Vec<R>, Option<PoolStats>)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 {
            if !measure {
                return ((0..n).map(f).collect(), None);
            }
            let start = Instant::now();
            let out: Vec<R> = (0..n).map(f).collect();
            return (
                out,
                Some(PoolStats {
                    tasks: vec![n as u64],
                    busy: vec![start.elapsed()],
                }),
            );
        }

        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        let mut stats = measure.then(|| PoolStats {
            tasks: Vec::with_capacity(workers),
            busy: Vec::with_capacity(workers),
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        let mut busy = Duration::ZERO;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                return (local, busy);
                            }
                            if measure {
                                let t0 = Instant::now();
                                local.push((i, f(i)));
                                busy += t0.elapsed();
                            } else {
                                local.push((i, f(i)));
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                let (local, busy) = h.join().expect("parallel map worker panicked");
                if let Some(stats) = &mut stats {
                    stats.tasks.push(local.len() as u64);
                    stats.busy.push(busy);
                }
                parts.push(local);
            }
        });

        // Reassemble in index order: placement is by index, so the result
        // is independent of which worker computed what.
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in parts.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(r);
        }
        let out = slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect();
        (out, stats)
    }

    /// Map `f` over a slice in parallel, returning results in item order.
    /// The closure receives `(index, &item)`.
    pub fn map_slice<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'a T) -> R + Sync,
    {
        self.map_range(items.len(), |i| f(i, &items[i]))
    }

    /// Run two closures, in parallel when this pool has more than one
    /// worker, and return both results.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.threads == 1 {
            return (a(), b());
        }
        std::thread::scope(|scope| {
            let hb = scope.spawn(b);
            let ra = a();
            (ra, hb.join().expect("join worker panicked"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hom_obs::Recorder;
    use std::sync::Arc;

    #[test]
    fn map_range_preserves_order() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(Some(threads));
            let out = pool.map_range(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // A deliberately uneven workload with per-item "randomness"
        // derived from the index: all pools must agree bit-for-bit.
        let work = |i: usize| {
            let mut acc = i as f64;
            for k in 0..(i % 7) * 1000 {
                acc += (k as f64).sin();
            }
            acc
        };
        let serial = Pool::serial().map_range(50, work);
        for threads in [2, 3, 8] {
            let parallel = Pool::new(Some(threads)).map_range(50, work);
            assert!(serial
                .iter()
                .zip(&parallel)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn map_slice_passes_items() {
        let items = vec!["a", "bb", "ccc"];
        let lens = Pool::new(Some(2)).map_slice(&items, |i, s| s.len() + i);
        assert_eq!(lens, vec![1, 3, 5]);
    }

    #[test]
    fn join_returns_both() {
        for pool in [Pool::serial(), Pool::new(Some(4))] {
            let (a, b) = pool.join(|| 1 + 1, || "x".to_string() + "y");
            assert_eq!(a, 2);
            assert_eq!(b, "xy");
        }
    }

    #[test]
    fn empty_and_unit_ranges() {
        let pool = Pool::new(Some(4));
        assert!(pool.map_range(0, |i| i).is_empty());
        assert_eq!(pool.map_range(1, |i| i), vec![0]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Pool::new(Some(0)).threads(), 1);
        assert!(Pool::new(None).threads() >= 1);
    }

    #[test]
    fn stats_account_for_every_task() {
        for threads in [1usize, 2, 8] {
            let pool = Pool::new(Some(threads));
            let (out, stats) = pool.map_range_stats(37, |i| i + 1);
            assert_eq!(out.len(), 37);
            assert_eq!(stats.total_tasks(), 37, "threads = {threads}");
            assert_eq!(stats.tasks.len(), stats.busy.len());
            assert!(stats.tasks.len() <= threads.max(1));
        }
    }

    #[test]
    fn stats_for_inline_paths() {
        let pool = Pool::new(Some(4));
        let (_, stats) = pool.map_range_stats(1, |i| i);
        assert_eq!(stats.tasks, vec![1]);
        let (_, stats) = pool.map_range_stats(0, |i| i);
        assert_eq!(stats.tasks, vec![0]);
        let (_, stats) = Pool::serial().map_range_stats(5, |i| i);
        assert_eq!(stats.tasks, vec![5]);
    }

    #[test]
    fn observed_pool_emits_work_distribution() {
        let rec = Arc::new(Recorder::new());
        let pool = Pool::with_obs(Some(4), hom_obs::Obs::new(Arc::clone(&rec)));
        let out = pool.map_range(64, |i| i);
        assert_eq!(out.len(), 64);
        let tasks = rec.series("pool.worker_tasks");
        let busy = rec.series("pool.worker_busy_us");
        assert_eq!(tasks.len(), 1);
        assert_eq!(busy.len(), 1);
        let (index, values) = &tasks[0];
        assert_eq!(*index, 64, "series index is the map's item count");
        assert_eq!(values.iter().sum::<f64>(), 64.0);
        assert!(values.len() <= 4);
    }

    #[test]
    fn unobserved_pool_emits_nothing() {
        let pool = Pool::new(Some(4));
        assert!(!pool.obs().enabled());
        pool.map_range(16, |i| i); // must not panic or emit
    }
}
