//! Small-scale checks of the paper's headline claims — the qualitative
//! shape of Tables II–IV and Figs. 3, 5, 6, asserted (not just printed)
//! so regressions in any crate surface as test failures.

use high_order_models::eval::algo::{build_algo, build_high_order, AlgoKind};
use high_order_models::eval::curves::{error_curve, probability_curves, CurveSpec};
use high_order_models::eval::runner::{config_for, default_learner, run_stream, run_workload};
use high_order_models::eval::workloads::{Workload, WorkloadKind};
use high_order_models::prelude::*;

fn tiny(kind: WorkloadKind, lambda: f64) -> Workload {
    Workload {
        kind,
        historical_size: 6_000,
        test_size: 8_000,
        lambda,
        block_size: 10,
    }
}

/// Table II shape: the high-order model beats both competitors on a
/// shift stream, by a wide margin.
#[test]
fn high_order_wins_on_stagger() {
    let results = run_workload(&tiny(WorkloadKind::Stagger, 0.002), &AlgoKind::PAPER, 11);
    let (high, repro, wce) = (&results[0], &results[1], &results[2]);
    assert!(high.error_rate < repro.error_rate);
    assert!(high.error_rate < wce.error_rate);
    assert!(
        high.error_rate < 0.5 * repro.error_rate.min(wce.error_rate),
        "margin too small: {} vs {}/{}",
        high.error_rate,
        repro.error_rate,
        wce.error_rate
    );
}

/// Table II shape on the drift stream: high-order still wins.
#[test]
fn high_order_wins_on_hyperplane() {
    let results = run_workload(&tiny(WorkloadKind::Hyperplane, 0.002), &AlgoKind::PAPER, 5);
    let high = &results[0];
    for other in &results[1..] {
        assert!(
            high.error_rate < other.error_rate,
            "{} ({}) should lose to high-order ({})",
            other.algo,
            other.error_rate,
            high.error_rate
        );
    }
}

/// Table IV shape: the build phase dominates the run phase, but the
/// number of concepts is small and the Stagger count is exact.
#[test]
fn build_phase_finds_exact_stagger_concepts() {
    let workload = tiny(WorkloadKind::Stagger, 0.005);
    let results = run_workload(&workload, &[AlgoKind::HighOrder], 3);
    let r = &results[0];
    // At this reduced scale (6k historical) an occasional duplicate
    // concept survives; the count must stay in the immediate vicinity of
    // the true 3 (the full-scale Table IV bench reproduces 3 exactly).
    let n = r.n_concepts.unwrap();
    assert!((3..=4).contains(&n), "found {n} concepts");
    assert!(
        r.build_time > r.test_time,
        "build {:?} should exceed test {:?}",
        r.build_time,
        r.test_time
    );
}

/// Fig. 3 shape: increasing the change frequency (smaller 1/λ) hurts WCE
/// far more than the high-order model.
#[test]
fn changing_rate_hurts_wce_not_high_order() {
    let fast = run_workload(
        &tiny(WorkloadKind::Stagger, 1.0 / 200.0),
        &[AlgoKind::HighOrder, AlgoKind::Wce],
        21,
    );
    let slow = run_workload(
        &tiny(WorkloadKind::Stagger, 1.0 / 2000.0),
        &[AlgoKind::HighOrder, AlgoKind::Wce],
        21,
    );
    let wce_degradation = fast[1].error_rate - slow[1].error_rate;
    let high_degradation = fast[0].error_rate - slow[0].error_rate;
    assert!(
        wce_degradation > high_degradation + 0.02,
        "WCE degradation {wce_degradation} vs high-order {high_degradation}"
    );
    assert!(fast[0].error_rate < 0.05, "high-order stays accurate");
}

/// Fig. 5 shape: after an abrupt shift the high-order model recovers
/// within a few records, WCE needs about a chunk.
#[test]
fn recovery_speed_after_shift() {
    let workload = tiny(WorkloadKind::Stagger, 0.002);
    let (historical, _, _) = workload.split(9);
    let learner = default_learner();
    let config = config_for(&workload, 9);
    let spec = CurveSpec {
        pre: 30,
        post: 150,
        period: 500,
        n_switches: 8,
    };

    let recovery_point = |curve: &[f64]| {
        // first offset >= 0 from which the error stays below 0.15
        (0..curve.len() - spec.pre)
            .find(|&k| curve[spec.pre + k..].iter().all(|&e| e < 0.15))
            .unwrap_or(usize::MAX)
    };

    let mut curves = Vec::new();
    for kind in [AlgoKind::HighOrder, AlgoKind::Wce] {
        let mut built = build_algo(kind, &historical, &learner, &config);
        let mut src = StaggerSource::new(StaggerParams {
            period: Some(500),
            seed: 77,
            ..Default::default()
        });
        curves.push(error_curve(built.algo.as_mut(), &mut src, &spec));
    }
    let high_rec = recovery_point(&curves[0]);
    let wce_rec = recovery_point(&curves[1]);
    assert!(high_rec <= 25, "high-order took {high_rec} records");
    assert!(
        wce_rec > high_rec,
        "WCE ({wce_rec}) should recover later than high-order ({high_rec})"
    );
}

/// Fig. 6 shape: the active probabilities of the old and new concepts
/// cross shortly after the shift.
#[test]
fn probabilities_cross_after_shift() {
    let workload = tiny(WorkloadKind::Stagger, 0.002);
    let (historical, _, _) = workload.split(13);
    let (mut algo, _, _) =
        build_high_order(&historical, &default_learner(), &config_for(&workload, 13));
    let spec = CurveSpec {
        pre: 20,
        post: 120,
        period: 500,
        n_switches: 8,
    };
    let mut src = StaggerSource::new(StaggerParams {
        period: Some(500),
        seed: 5,
        ..Default::default()
    });
    let (p_old, p_new) = probability_curves(&mut algo, &mut src, &spec);
    // dominance before, crossover after
    assert!(p_old[10] > p_new[10], "old concept should dominate before");
    let tail = spec.pre + 100;
    assert!(
        p_new[tail] > 0.6 && p_new[tail] > p_old[tail],
        "new concept should dominate 100 records after the shift \
         (p_new = {}, p_old = {})",
        p_new[tail],
        p_old[tail]
    );
}

/// Table III ingredient: the §III-C pruning does not change predictions
/// (asserted in unit/property tests) and the high-order test loop is not
/// slower than WCE's ensemble loop.
#[test]
fn high_order_test_time_is_competitive() {
    let workload = tiny(WorkloadKind::Stagger, 0.002);
    let learner = default_learner();
    let config = config_for(&workload, 17);
    let mut times = Vec::new();
    for kind in [AlgoKind::HighOrder, AlgoKind::Wce] {
        let (historical, _, mut source) = workload.split(17);
        let mut built = build_algo(kind, &historical, &learner, &config);
        let (_, t) = run_stream(built.algo.as_mut(), source.as_mut(), workload.test_size);
        times.push(t);
    }
    assert!(
        times[0] < times[1],
        "high-order {:?} should beat WCE {:?} at test time",
        times[0],
        times[1]
    );
}
