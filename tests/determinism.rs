//! The parallel build's central contract: `BuildOptions { threads }` is an
//! execution knob, never a modelling knob. Building the same historical
//! data with 1, 2 and 8 worker threads must produce *identical* models —
//! same concepts, same occurrence sequence, same transition statistics and
//! behaviorally identical classifiers — because every parallel stage
//! derives its randomness from `(seed, item index)` rather than from a
//! shared sequential RNG (see `hom_parallel`'s determinism contract).

use high_order_models::prelude::*;

/// Everything observable about a built model, in comparable form.
struct Fingerprint {
    n_concepts: usize,
    concept_shape: Vec<(f64, usize, usize)>,
    occurrences: Vec<(usize, usize)>,
    mergers: (usize, usize),
    stats: TransitionStats,
    /// Each concept model's predictions over a probe grid — catches any
    /// divergence inside the trained classifiers themselves.
    probe_predictions: Vec<Vec<u32>>,
}

fn fingerprint(data: &Dataset, threads: usize, block_size: usize) -> Fingerprint {
    let (model, report) = build_with(
        data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size,
                seed: 11,
                ..Default::default()
            },
            ..Default::default()
        },
        &BuildOptions {
            threads: Some(threads),
            sink: Obs::none(),
        },
    );
    let probe_predictions = model
        .concepts()
        .iter()
        .map(|c| {
            (0..data.len())
                .map(|i| c.model.predict(data.row(i)))
                .collect()
        })
        .collect();
    Fingerprint {
        n_concepts: model.n_concepts(),
        concept_shape: model
            .concepts()
            .iter()
            .map(|c| (c.err, c.n_records, c.n_occurrences))
            .collect(),
        occurrences: report.occurrences,
        mergers: report.mergers,
        stats: model.stats().clone(),
        probe_predictions,
    }
}

fn assert_identical(data: &Dataset, block_size: usize) {
    let reference = fingerprint(data, 1, block_size);
    for threads in [2usize, 8] {
        let candidate = fingerprint(data, threads, block_size);
        assert_eq!(
            reference.n_concepts, candidate.n_concepts,
            "concept count differs at threads={threads}"
        );
        assert_eq!(
            reference.concept_shape, candidate.concept_shape,
            "concept err/size/occurrences differ at threads={threads}"
        );
        assert_eq!(
            reference.occurrences, candidate.occurrences,
            "occurrence sequence differs at threads={threads}"
        );
        assert_eq!(
            reference.mergers, candidate.mergers,
            "merger counts differ at threads={threads}"
        );
        assert_eq!(
            reference.stats, candidate.stats,
            "transition statistics differ at threads={threads}"
        );
        assert_eq!(
            reference.probe_predictions, candidate.probe_predictions,
            "classifier predictions differ at threads={threads}"
        );
    }
}

#[test]
fn stagger_build_is_identical_across_thread_counts() {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 4_000);
    assert_identical(&data, 10);
}

#[test]
fn hyperplane_build_is_identical_across_thread_counts() {
    let mut src = HyperplaneSource::new(HyperplaneParams {
        lambda: 0.002,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 5_000);
    assert_identical(&data, 25);
}

/// An observed multi-threaded build reports how its parallel maps
/// distributed work: the `pool.worker_tasks` series must be present, use
/// more than one worker slot on the big stages, and account for a
/// non-zero amount of work — while the built model stays identical to the
/// unobserved one (observability only measures).
#[test]
fn observed_build_reports_worker_distribution() {
    use std::sync::Arc;

    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 4_000);
    let params = BuildParams {
        cluster: ClusterParams {
            block_size: 10,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    };
    let recorder = Arc::new(Recorder::new());
    let (observed, _) = build_with(
        &data,
        &DecisionTreeLearner::new(),
        &params,
        &BuildOptions {
            threads: Some(4),
            sink: Obs::new(Arc::clone(&recorder)),
        },
    );
    let distributions = recorder.series("pool.worker_tasks");
    assert!(
        !distributions.is_empty(),
        "an observed build must emit pool.worker_tasks"
    );
    let total_tasks: f64 = distributions
        .iter()
        .flat_map(|(_, workers)| workers.iter())
        .sum();
    assert!(total_tasks > 0.0, "worker task counts are all zero");
    // The 400-block fit stage must actually fan out. Every worker getting
    // work is not guaranteed (a 1-core CI machine clamps the pool), but
    // the distribution vector must match the pool the stage ran on.
    let widest = distributions
        .iter()
        .map(|(_, workers)| workers.len())
        .max()
        .unwrap();
    assert!(
        (1..=4).contains(&widest),
        "worker distribution has {widest} slots for a 4-thread pool"
    );
    assert!(
        recorder.spans("build").len() == 1
            && recorder.spans("step1").len() == 1
            && recorder.spans("step2").len() == 1,
        "build/step1/step2 spans missing from the trace"
    );

    // Observability must not have changed the result.
    let reference = fingerprint(&data, 4, 10);
    assert_eq!(observed.n_concepts(), reference.n_concepts);
    assert_eq!(
        observed
            .concepts()
            .iter()
            .map(|c| (c.err, c.n_records, c.n_occurrences))
            .collect::<Vec<_>>(),
        reference.concept_shape
    );
}
