//! End-to-end pipeline tests spanning every crate: generator → concept
//! clustering → high-order model → online prediction, on all three
//! benchmark stream families at reduced scale.

use std::sync::Arc;

use high_order_models::prelude::*;

fn run_pipeline(
    source: &mut dyn StreamSource,
    historical: usize,
    test: usize,
    block_size: usize,
) -> (usize, f64) {
    let (data, _) = collect(source, historical);
    let (model, report) = build(
        &data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut predictor = OnlinePredictor::new(Arc::new(model));
    let mut wrong = 0usize;
    for _ in 0..test {
        let r = source.next_record();
        if predictor.step(&r.x, r.y) != r.y {
            wrong += 1;
        }
    }
    (report.n_concepts, wrong as f64 / test as f64)
}

#[test]
fn stagger_pipeline_recovers_concepts_and_tracks() {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.005,
        ..Default::default()
    });
    let (n_concepts, err) = run_pipeline(&mut src, 8_000, 8_000, 10);
    assert_eq!(n_concepts, 3, "Stagger has exactly three concepts");
    assert!(err < 0.03, "online error {err}");
}

#[test]
fn hyperplane_pipeline_handles_drift() {
    // The paper's default λ = 0.001 (mean run 1000 records, ~10% of them
    // mid-glide). A faster λ = 0.005 leaves roughly half of every run
    // drifting between hyperplanes — at 10k-record scale the four
    // (similar, all-positive-weight) hyperplanes then blur into one
    // cluster whose single tree is within holdout noise of the oracle
    // partition, and the Q-driven cut rightly refuses to split. Blocks
    // of 50 give each holdout test half enough records (25) for Err to
    // carry signal.
    let mut src = HyperplaneSource::new(HyperplaneParams {
        lambda: 0.001,
        ..Default::default()
    });
    let (n_concepts, err) = run_pipeline(&mut src, 10_000, 10_000, 50);
    assert!(
        (2..=6).contains(&n_concepts),
        "expected a few concepts, found {n_concepts}"
    );
    // trees only approximate hyperplanes; mid-drift records are noisy
    assert!(err < 0.15, "online error {err}");
}

#[test]
fn intrusion_pipeline_handles_sampling_change() {
    let mut src = IntrusionSource::new(IntrusionParams {
        lambda: 0.002,
        ..Default::default()
    });
    // Sampling change means P(x) shifts while P(y|x) stays broadly
    // consistent, so a merged classifier can stay accurate and the
    // Q-driven cut may legitimately keep regimes merged at small scale —
    // accuracy, not the concept count, is the real invariant here.
    let (n_concepts, err) = run_pipeline(&mut src, 10_000, 10_000, 20);
    assert!(
        (2..=9).contains(&n_concepts),
        "expected 2–9 mined regimes, found {n_concepts}"
    );
    assert!(err < 0.08, "online error {err}");
}

#[test]
fn model_is_shareable_across_threads() {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 4_000);
    let (model, _) = build(
        &data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let model = Arc::new(model);

    // Two predictors over the same immutable model, in parallel threads.
    let handles: Vec<_> = (0..2)
        .map(|t| {
            let model = Arc::clone(&model);
            std::thread::spawn(move || {
                let mut src = StaggerSource::new(StaggerParams {
                    lambda: 0.01,
                    seed: 100 + t,
                    ..Default::default()
                });
                let mut p = OnlinePredictor::new(model);
                let mut wrong = 0;
                for _ in 0..2_000 {
                    let r = src.next_record();
                    if p.step(&r.x, r.y) != r.y {
                        wrong += 1;
                    }
                }
                wrong
            })
        })
        .collect();
    for h in handles {
        let wrong = h.join().unwrap();
        assert!(wrong < 200, "thread saw {wrong}/2000 errors");
    }
}

#[test]
fn naive_bayes_base_learner_works_end_to_end() {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.005,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 8_000);
    let (model, report) = build(
        &data,
        &NaiveBayesLearner,
        &BuildParams {
            cluster: ClusterParams {
                block_size: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // NB cannot express Stagger's conjunctive concepts exactly, but the
    // pipeline must still produce a usable model.
    assert!(report.n_concepts >= 2);
    let mut p = OnlinePredictor::new(Arc::new(model));
    let mut wrong = 0usize;
    for _ in 0..4_000 {
        let r = src.next_record();
        if p.step(&r.x, r.y) != r.y {
            wrong += 1;
        }
    }
    assert!(wrong < 1_200, "NB pipeline error {wrong}/4000");
}

#[test]
fn sea_pipeline_extension_workload() {
    // SEA (Street & Kim KDD'01) is not in the paper's evaluation but is
    // the classic abrupt-shift benchmark of its citations; the pipeline
    // must handle it out of the box.
    let mut src = SeaSource::new(SeaParams {
        lambda: 0.005,
        ..Default::default()
    });
    // SEA's thresholds differ by as little as 0.5 on a sum of two U(0,10)
    // attributes, so blocks must be large enough that a 50-record holdout
    // test half separates them — block 20 (10-record test halves) is pure
    // noise and the ΔQ merge chain runs away. The count assertion is for
    // this fixed seed; nearby seeds legitimately mine 2–6.
    let (n_concepts, err) = run_pipeline(&mut src, 10_000, 10_000, 100);
    // Thresholds 8.0 / 9.0 / 7.0 / 9.5 are close; 9.0 and 9.5 label 97%
    // of records identically, so 3–4 mined concepts are both reasonable.
    assert!(
        (3..=5).contains(&n_concepts),
        "expected ~4 concepts, found {n_concepts}"
    );
    assert!(err < 0.06, "online error {err}");
}

#[test]
fn variable_rate_advance_by_diffuses() {
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, _) = collect(&mut src, 4_000);
    let (model, _) = build(
        &data,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let model = Arc::new(model);
    let mut a = OnlinePredictor::new(Arc::clone(&model));
    let mut b = OnlinePredictor::new(model);
    // pin both on one concept
    for _ in 0..50 {
        let r = src.next_record();
        a.observe(&r.x, r.y);
        b.observe(&r.x, r.y);
    }
    // advance_by(k) must equal k single advances
    a.advance_by(25);
    for _ in 0..25 {
        b.advance();
    }
    assert_eq!(a.concept_probs(), b.concept_probs());
}

#[test]
fn replay_source_feeds_the_pipeline() {
    // Build from a replayed recording instead of a live generator: the
    // historical dataset round-trips through ReplaySource unchanged.
    let mut src = StaggerSource::new(StaggerParams {
        lambda: 0.01,
        ..Default::default()
    });
    let (data, tags) = collect(&mut src, 3_000);
    let mut replay = ReplaySource::new(data.clone(), tags);
    let (copy, _) = collect(&mut replay, 3_000);
    assert_eq!(copy.len(), data.len());
    for i in 0..data.len() {
        assert_eq!(copy.row(i), data.row(i));
        assert_eq!(copy.label(i), data.label(i));
    }
}
