//! Cross-crate behavioral contrasts between the algorithms — the
//! mechanisms the paper's §IV-C discussion attributes to each method,
//! asserted on controlled streams.

use std::sync::Arc;

use high_order_models::baselines::{RePro, ReProParams, Wce, WceParams};
use high_order_models::prelude::*;

fn learner() -> Arc<dyn Learner> {
    Arc::new(DecisionTreeLearner::new())
}

/// A recurring A/B/A/B Stagger-like scripted stream.
fn scripted(period: usize, seed: u64) -> StaggerSource {
    StaggerSource::new(StaggerParams {
        period: Some(period),
        seed,
        ..Default::default()
    })
}

/// RePro's defining behaviour: a *recurring* concept is recognised and its
/// stored model reused, so the second occurrence of a concept costs far
/// fewer errors than the first.
#[test]
fn repro_reuses_recurring_concepts() {
    let mut src = scripted(600, 3);
    let mut repro = RePro::new(src.schema().clone(), learner(), ReProParams::default());
    // Count errors per 600-record segment. Stagger cycles A,B,C,A,B,C …
    let mut seg_errors = Vec::new();
    for _seg in 0..6 {
        let mut wrong = 0;
        for _ in 0..600 {
            let r = src.next_record();
            if repro.predict(&r.x) != r.y {
                wrong += 1;
            }
            repro.learn(&r.x, r.y);
        }
        seg_errors.push(wrong);
    }
    // Segments 3..5 revisit the concepts of segments 0..2: recovery must
    // be cheaper the second time around.
    let first_pass: usize = seg_errors[1..3].iter().sum();
    let second_pass: usize = seg_errors[4..6].iter().sum();
    assert!(
        second_pass * 2 < first_pass,
        "reuse should at least halve the per-revisit cost: {seg_errors:?}"
    );
    // and the concept history must not grow without bound
    assert!(repro.n_concepts() <= 4, "history = {}", repro.n_concepts());
}

/// WCE's defining limitation: it never remembers — the second occurrence
/// of a concept costs about as much as the first.
#[test]
fn wce_never_remembers() {
    let mut src = scripted(600, 3);
    let mut wce = Wce::new(src.schema().clone(), learner(), WceParams::default());
    let mut seg_errors = Vec::new();
    for _seg in 0..6 {
        let mut wrong = 0;
        for _ in 0..600 {
            let r = src.next_record();
            if wce.predict(&r.x) != r.y {
                wrong += 1;
            }
            wce.learn(&r.x, r.y);
        }
        seg_errors.push(wrong);
    }
    let first_pass: usize = seg_errors[1..3].iter().sum();
    let second_pass: usize = seg_errors[4..6].iter().sum();
    // Within 2x either way: revisits are *not* systematically cheaper.
    assert!(
        second_pass * 2 >= first_pass,
        "WCE should not benefit much from recurrence: {seg_errors:?}"
    );
}

/// The high-order model outperforms both on the same scripted stream once
/// it has mined the concepts offline.
#[test]
fn high_order_beats_both_on_recurrence() {
    let mut hist_src = StaggerSource::new(StaggerParams {
        lambda: 0.005,
        ..Default::default()
    });
    let (historical, _) = collect(&mut hist_src, 8_000);
    let (model, _) = build(
        &historical,
        &DecisionTreeLearner::new(),
        &BuildParams {
            cluster: ClusterParams {
                block_size: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut predictor = OnlinePredictor::new(Arc::new(model));

    let run = |f: &mut dyn FnMut(&[f64], u32) -> u32| {
        let mut src = scripted(600, 3);
        let mut wrong = 0usize;
        for _ in 0..3_600 {
            let r = src.next_record();
            if f(&r.x, r.y) != r.y {
                wrong += 1;
            }
        }
        wrong
    };

    let high_errors = run(&mut |x, y| predictor.step(x, y));

    let mut repro = RePro::new(stagger_schema_for_test(), learner(), ReProParams::default());
    let repro_errors = run(&mut |x, y| {
        let p = repro.predict(x);
        repro.learn(x, y);
        p
    });

    let mut wce = Wce::new(stagger_schema_for_test(), learner(), WceParams::default());
    let wce_errors = run(&mut |x, y| {
        let p = wce.predict(x);
        wce.learn(x, y);
        p
    });

    assert!(
        high_errors < repro_errors && high_errors < wce_errors,
        "high-order {high_errors} vs repro {repro_errors} vs wce {wce_errors}"
    );
}

fn stagger_schema_for_test() -> Arc<Schema> {
    StaggerSource::new(StaggerParams::default())
        .schema()
        .clone()
}
