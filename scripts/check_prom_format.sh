#!/usr/bin/env bash
# Validate a Prometheus text-format 0.0.4 exposition (what /metrics
# serves) using nothing but bash + awk — the workspace ships no
# dependencies, and neither does its CI.
#
#   bash scripts/check_prom_format.sh metrics.txt
#
# Checks, per the exposition-format spec:
#   * every line is a comment (# HELP / # TYPE), blank, or a sample
#     `name[{labels}] value` with a legal metric name and numeric value;
#   * each family's # HELP precedes its # TYPE, which precedes its
#     samples, and no family is declared twice;
#   * every sample belongs to a declared family (histogram samples
#     `<base>_bucket/_sum/_count` resolve to the `<base>` family);
#   * counter sample values are non-negative;
#   * every histogram **series** (family + label set, ignoring `le`) has
#     a `+Inf` bucket, cumulative (non-decreasing) bucket counts, and a
#     `_count` equal to its `+Inf` bucket — label-aware, so a federated
#     exposition with one series per worker (`worker="0"`, `worker="1"`,
#     …) validates each worker's histogram independently.
#
# Exits non-zero naming the first offending line.

set -euo pipefail

if [[ $# -ne 1 ]]; then
    echo "usage: $0 <metrics-file>" >&2
    exit 2
fi
file="$1"
if [[ ! -s "$file" ]]; then
    echo "check_prom_format: $file is missing or empty" >&2
    exit 1
fi

awk '
function fail(msg) {
    printf "check_prom_format: %s:%d: %s\n  %s\n", FILENAME, NR, msg, $0 > "/dev/stderr"
    failed = 1
    exit 1
}
# The family a sample name belongs to: histogram series fold onto their
# base name when the base was declared as a histogram.
function family(name,    base) {
    if (name in type) return name
    base = name
    sub(/_(bucket|sum|count)$/, "", base)
    if ((base in type) && type[base] == "histogram") return base
    return name
}
/^$/ { next }
/^# HELP / {
    if (split($0, h, " ") < 4) fail("HELP without a docstring")
    if (h[3] in help) fail("family " h[3] " HELP declared twice")
    help[h[3]] = 1
    next
}
/^# TYPE / {
    n = split($0, t, " ")
    if (n != 4) fail("TYPE line must be \"# TYPE <name> <kind>\"")
    if (!(t[4] ~ /^(counter|gauge|histogram|summary|untyped)$/))
        fail("unknown metric kind \"" t[4] "\"")
    if (t[3] in type) fail("family " t[3] " TYPE declared twice")
    if (!(t[3] in help)) fail("family " t[3] " has TYPE before HELP")
    type[t[3]] = t[4]
    next
}
/^#/ { next }  # other comments are legal
{
    # A sample: name[{labels}] value
    if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/)) fail("illegal metric name")
    name = substr($0, 1, RLENGTH)
    rest = substr($0, RLENGTH + 1)
    labels = ""
    if (rest ~ /^\{/) {
        if (!match(rest, /^\{[^}]*\}/)) fail("unclosed label set")
        labels = substr(rest, 2, RLENGTH - 2)
        rest = substr(rest, RLENGTH + 1)
    }
    sub(/^[ \t]+/, "", rest)
    value = rest
    sub(/[ \t].*$/, "", value)  # a trailing timestamp is legal
    if (!(value ~ /^[+-]?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|Inf|NaN)$/))
        fail("sample value \"" value "\" is not a number")

    fam = family(name)
    if (!(fam in type)) fail("sample " name " has no # TYPE declaration")
    kind = type[fam]
    if (kind == "counter" && value + 0 < 0)
        fail("counter " name " has negative value " value)

    if (kind == "histogram" && name == fam "_bucket") {
        if (!match(labels, /le="[^"]*"/)) fail("histogram bucket without le label")
        le = substr(labels, RSTART + 4, RLENGTH - 5)
        # The series is the label set minus the le pair (and the comma
        # that joined it): per-series cumulativity, so federated
        # expositions with one series per worker stay valid.
        series = labels
        sub(/(^|,)le="[^"]*"/, "", series)
        sub(/^,/, "", series)
        key = fam SUBSEP series
        hseries[key] = 1
        if (le == "+Inf") { inf_bucket[key] = value + 0 }
        if (key in last_bucket && value + 0 < last_bucket[key])
            fail("histogram " fam "{" series "} buckets are not cumulative")
        last_bucket[key] = value + 0
    }
    if (kind == "histogram" && name == fam "_count") {
        hseries[fam SUBSEP labels] = 1
        hist_count[fam SUBSEP labels] = value + 0
    }
    if (kind == "histogram" && name == fam "_sum") hist_sum[fam SUBSEP labels] = 1
    seen[fam] = 1
    nsamples++
}
END {
    if (failed) exit 1  # awk runs END even after exit; keep one message
    for (key in hseries) {
        split(key, parts, SUBSEP)
        where = parts[1] "{" parts[2] "}"
        if (!(key in inf_bucket)) {
            printf "check_prom_format: histogram %s has no +Inf bucket\n", where > "/dev/stderr"
            exit 1
        }
        if (!(key in hist_sum)) {
            printf "check_prom_format: histogram %s has no _sum\n", where > "/dev/stderr"
            exit 1
        }
        if (!(key in hist_count) || hist_count[key] != inf_bucket[key]) {
            printf "check_prom_format: histogram %s _count != +Inf bucket\n", where > "/dev/stderr"
            exit 1
        }
    }
    if (nsamples == 0) {
        print "check_prom_format: no samples in exposition" > "/dev/stderr"
        exit 1
    }
}
' "$file"

echo "check_prom_format: $file ok ($(grep -cv '^#\|^$' "$file") samples, $(grep -c '^# TYPE' "$file") families)"
