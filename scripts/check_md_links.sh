#!/usr/bin/env bash
# Checks that every relative markdown link in the top-level docs points
# at a file that exists in the repository. External (http/https/mailto)
# links are not fetched — CI must pass without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md ARCHITECTURE.md DESIGN.md EXPERIMENTS.md OPERATIONS.md; do
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
    esac
    path="${target%%#*}" # intra-document anchors point at headings, not files
    [ -z "$path" ] && continue
    if [ ! -e "$path" ]; then
      echo "$doc: broken link -> $target" >&2
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "all relative links resolve"
